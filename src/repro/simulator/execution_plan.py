"""Compiled execution plans: lower a circuit once, replay it many times.

The paper's throughput claims rest on the accelerator re-executing the
*same* circuits at high rates (VQE/QAOA iterations, trajectory shots,
multi-client broker traffic).  The gate-by-gate path pays Python dispatch,
target re-validation and a fresh ``instruction.matrix()`` allocation on
every application; this module amortises all of that the way Quantum++
amortises gate application with fused OpenMP kernels:

* :func:`compile_plan` runs the IR optimisation pipeline once, precomputes
  every gate matrix, classifies each step into a specialised kernel
  (single-qubit in-place, controlled-single, diagonal/phase, permutation
  for X/CX/SWAP-style moves, basis-gather for classical permutations, and
  fused ≤3-qubit dense blocks) and pre-resolves all reshape geometry.
* :class:`ExecutionPlan.execute` is then a tight loop over ready kernels
  with a reusable per-thread ping-pong scratch buffer instead of per-gate
  allocation.
* :func:`compile_parametric_plan` handles the VQE/QAOA hot loop: the plan
  is compiled once from the *symbolic* ansatz and only the rotation
  matrices are re-bound per parameter set (per thread, so concurrently
  bound plans never race).
* **Diagonal batching** (``batch_diagonals=True``): adjacent runs of
  diagonal kernels — QFT's CPHASE ladders, bound RZ layers — collapse at
  compile time into one combined :data:`KERNEL_DIAGONAL` step holding the
  precomputed product diagonal over the union of touched qubits, shrinking
  step counts and full-state memory passes.
* **Chunk-parallel replay** (``execute(state, pool=...)``): for states
  of at least ``chunk_threshold`` amplitudes, every kernel splits into
  contiguous/disjoint sub-views dispatched on a :class:`ChunkPool` — the
  thread-pool :class:`~repro.simulator.parallel_engine.ParallelSimulationEngine`
  (NumPy releases the GIL inside the vectorised inner loops, so chunks
  genuinely overlap) or the shared-memory process pool
  :class:`~repro.exec.shm.SharedStatePool` (each worker process maps the
  same amplitude buffers and replays its sub-views with a barrier per
  step).  Because every chunk performs exactly the per-amplitude
  arithmetic of the serial kernel, chunked replay is **bitwise
  identical** to serial replay on either pool.

Plans are immutable after compilation (parametric binding mutates only
per-thread step copies), so one plan can be shared by every trajectory
worker and every broker dispatcher consulting the plan cache.
"""

from __future__ import annotations

import cmath
import math
import threading
import time
from collections import Counter
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from ..cancellation import active_cancel_token
from ..exceptions import ExecutionError
from ..obs.profiler import active_profiler
from ..ir.composite import CompositeInstruction
from ..ir.gates import PermutationGate, UnitaryGate
from ..ir.instruction import Instruction
from ..ir.parameter import bind_value
from ..ir.transforms import default_pass_manager

__all__ = [
    "ChunkPool",
    "ExecutionPlan",
    "ParametricExecutionPlan",
    "PlanStep",
    "compile_plan",
    "compile_parametric_plan",
    "resolve_precision",
    "precision_dtype",
    "DEFAULT_FUSION_MAX_QUBITS",
    "DEFAULT_CHUNK_THRESHOLD",
    "DEFAULT_DIAGONAL_BATCH_MAX_QUBITS",
    "DEFAULT_PRECISION",
    "PRECISION_DTYPES",
]


@runtime_checkable
class ChunkPool(Protocol):
    """Anything :meth:`ExecutionPlan.execute` accepts as ``pool=``.

    A chunk pool owns a set of workers (threads or processes) and knows how
    to replay a compiled plan across them.  :meth:`replay_plan` returns the
    resulting amplitude array, or ``None`` when the pool cannot improve on
    serial replay for this plan (too few workers, unsupported kernels) —
    the caller then falls back to the serial sweep.  Implementations must
    keep chunked replay bitwise identical to serial replay; the thread
    engine and the shared-memory process pool are interchangeable behind
    this protocol.
    """

    def effective_threads(self) -> int:
        """Worker count the pool would split a replay across."""
        ...  # pragma: no cover - protocol

    def replay_plan(
        self, plan: "ExecutionPlan", data: np.ndarray, rng=None
    ) -> np.ndarray | None:
        """Chunk-replay ``plan`` over ``data``; ``None`` = use serial."""
        ...  # pragma: no cover - protocol

#: Kernel tags (ints for tight dispatch; names for introspection).
KERNEL_SINGLE = 0  #: in-place 2x2 update on one qubit
KERNEL_CONTROLLED = 1  #: in-place 2x2 update on the control=1 subspace
KERNEL_DIAGONAL = 2  #: strided in-place phase multiplies (no index arrays)
KERNEL_PERMUTATION = 3  #: slice exchanges for X/CX/SWAP/CCX/CSWAP
KERNEL_GATHER = 4  #: whole-state index gather for classical permutations
KERNEL_DENSE = 5  #: fused <=3-qubit dense block (gather + matmul + scatter)
KERNEL_RESET = 6  #: mid-circuit projective reset (needs an RNG)

KERNEL_NAMES = {
    KERNEL_SINGLE: "single",
    KERNEL_CONTROLLED: "controlled",
    KERNEL_DIAGONAL: "diagonal",
    KERNEL_PERMUTATION: "permutation",
    KERNEL_GATHER: "gather",
    KERNEL_DENSE: "dense",
    KERNEL_RESET: "reset",
}

#: Default ceiling for dense-block fusion (0/1 disables, 3 is the max).
DEFAULT_FUSION_MAX_QUBITS = 2

#: States below this many amplitudes are never chunk-parallelised: the pool
#: dispatch overhead dominates the kernels.  2^16 amplitudes = 16 qubits =
#: 1 MiB of complex128, the point where one kernel sweep clearly outweighs
#: a handful of thread-pool submissions.
DEFAULT_CHUNK_THRESHOLD = 1 << 16

#: Ceiling on the union of qubits a batched diagonal step may touch (the
#: product diagonal holds ``2**k`` entries and the strided kernel issues up
#: to that many slice multiplies, so the cap bounds both).
DEFAULT_DIAGONAL_BATCH_MAX_QUBITS = 6

#: Amplitude precision tiers.  ``"double"`` (complex128) is the bit-exact
#: reference every identity guarantee is stated against; ``"single"``
#: (complex64) halves amplitude bytes — and therefore the memory bandwidth
#: that bounds big-state replay — at the cost of ~1e-7 per-operation
#: rounding (≤1e-4 accumulated deviation on the benchmark suite).
#: Precision is a *compile* option: it is baked into the plan's buffers and
#: kernel payloads, participates in every plan-cache key, and — unlike the
#: lane/threading knobs — is **semantic** for job identity (it changes the
#: amplitudes a job produces).
PRECISION_DTYPES = {"double": np.complex128, "single": np.complex64}
DEFAULT_PRECISION = "double"

#: Accepted spellings per tier (the backend option surface is stringly).
_PRECISION_ALIASES = {
    "double": "double",
    "complex128": "double",
    "fp64": "double",
    "single": "single",
    "complex64": "single",
    "fp32": "single",
}


def resolve_precision(precision: object) -> str:
    """Normalise a precision spelling to ``"double"`` / ``"single"``."""
    if precision is None:
        return DEFAULT_PRECISION
    key = str(precision).strip().lower()
    tier = _PRECISION_ALIASES.get(key)
    if tier is None:
        raise ExecutionError(
            f"unknown precision {precision!r}; expected one of "
            f"{sorted(set(_PRECISION_ALIASES))}"
        )
    return tier


def precision_dtype(precision: object) -> np.dtype:
    """The numpy complex dtype for a precision tier spelling."""
    return np.dtype(PRECISION_DTYPES[resolve_precision(precision)])

#: Gates realised as pure amplitude moves (never fused: moving is cheaper
#: than any arithmetic a fused block would do).
_PERMUTATION_GATES = frozenset({"X", "CX", "SWAP", "CCX", "CSWAP"})

#: Gates realised as strided phase multiplies (multi-qubit members are kept
#: out of fusion for the same reason).
_DIAGONAL_GATES = frozenset({"Z", "S", "SDG", "T", "TDG", "RZ", "CZ", "CPHASE", "CRZ"})

#: Two-qubit gates applied as a controlled 2x2 payload (matches
#: :func:`repro.simulator.gate_application.apply_gate`).
_CONTROLLED_GATES = frozenset({"CY", "CH"})


class PlanStep:
    """One ready-to-run kernel invocation with pre-resolved geometry."""

    __slots__ = (
        "tag",
        "name",
        "targets",
        "m00",
        "m01",
        "m10",
        "m11",
        "block",
        "ctrl_index",
        "sub_target_axis",
        "diag",
        "diag_idx",
        "diag_nd",
        "pairs",
        "gather",
        "matrix",
        "perm",
        "inv_perm",
        "dim_k",
        "parametric",
        "rebind_fast",
    )

    def __init__(self, tag: int, name: str, targets: tuple[int, ...]):
        self.tag = tag
        self.name = name
        self.targets = targets
        self.parametric = None
        self.rebind_fast = None

    @property
    def kernel(self) -> str:
        return KERNEL_NAMES[self.tag]

    def clone(self) -> "PlanStep":
        copy = PlanStep(self.tag, self.name, self.targets)
        for slot in PlanStep.__slots__:
            try:
                setattr(copy, slot, getattr(self, slot))
            except AttributeError:
                pass
        return copy

    def rebind(self, values: Mapping[str, float]) -> None:
        """Recompute this step's matrices from its symbolic instruction.

        The named rotation gates (the entire VQE/QAOA hot loop) have direct
        trig fast paths that reproduce their ``matrix()`` definitions bit
        for bit without building an instruction copy or a matrix array.
        """
        instruction = self.parametric
        if instruction is None:
            return
        if self.rebind_fast is not None:
            kind = self.rebind_fast
            bound = tuple(bind_value(p, values) for p in instruction.parameters)
            if kind == "RY":
                c, s = math.cos(bound[0] / 2), math.sin(bound[0] / 2)
                self.m00, self.m01, self.m10, self.m11 = complex(c), complex(-s), complex(s), complex(c)
            elif kind == "RX":
                c, s = math.cos(bound[0] / 2), math.sin(bound[0] / 2)
                self.m00, self.m01, self.m10, self.m11 = complex(c), -1j * s, -1j * s, complex(c)
            elif kind == "RZ":
                self.diag = (cmath.exp(-1j * bound[0] / 2), cmath.exp(1j * bound[0] / 2))
            elif kind == "CPHASE":
                self.diag = (1.0, 1.0, 1.0, cmath.exp(1j * bound[0]))
            elif kind == "CRZ":
                self.diag = (
                    1.0,
                    cmath.exp(-1j * bound[0] / 2),
                    1.0,
                    cmath.exp(1j * bound[0] / 2),
                )
            else:  # U3
                theta, phi, lam = bound
                c, s = math.cos(theta / 2), math.sin(theta / 2)
                self.m00 = complex(c)
                self.m01 = -cmath.exp(1j * lam) * s
                self.m10 = cmath.exp(1j * phi) * s
                self.m11 = cmath.exp(1j * (phi + lam)) * c
            return
        matrix = instruction.bind(values).matrix()
        if self.tag == KERNEL_SINGLE:
            self.m00 = complex(matrix[0, 0])
            self.m01 = complex(matrix[0, 1])
            self.m10 = complex(matrix[1, 0])
            self.m11 = complex(matrix[1, 1])
        elif self.tag == KERNEL_DIAGONAL:
            self.diag = tuple(complex(v) for v in np.diag(matrix))
        elif self.tag == KERNEL_CONTROLLED:
            payload = matrix[np.ix_([1, 3], [1, 3])]
            self.m00 = complex(payload[0, 0])
            self.m01 = complex(payload[0, 1])
            self.m10 = complex(payload[1, 0])
            self.m11 = complex(payload[1, 1])
        else:  # dense fallback
            # Keep the step's compiled dtype: a single-precision plan's
            # dense payloads stay complex64 across rebinds.
            previous = getattr(self, "matrix", None)
            dtype = previous.dtype if isinstance(previous, np.ndarray) else complex
            self.matrix = np.ascontiguousarray(matrix, dtype=dtype)

    def __repr__(self) -> str:
        return f"PlanStep({self.kernel}, {self.name}, targets={self.targets})"


class ExecutionPlan:
    """A flat, reusable sequence of specialised kernels over ``n_qubits``.

    ``execute`` consumes (and may recycle) the array it is given and
    returns the resulting state — callers must adopt the return value and
    not alias the input afterwards.  The plan keeps one scratch buffer per
    thread, so a single plan instance can be replayed concurrently from
    many trajectory or dispatcher threads.
    """

    is_parametric = False

    def __init__(
        self,
        n_qubits: int,
        steps: Sequence[PlanStep],
        *,
        name: str = "plan",
        measured_qubits: tuple[int, ...] = (),
        depth: int = 0,
        n_gates: int = 0,
        source_gates: int = 0,
        fused_gates: int = 0,
        batched_diagonals: int = 0,
        chunk_threshold: int | None = None,
        requires_binding: bool = False,
        precision: str = DEFAULT_PRECISION,
    ):
        self.n_qubits = int(n_qubits)
        self.name = name
        self.measured_qubits = tuple(measured_qubits)
        self.depth = depth
        #: Unitary gate count of the optimised circuit the plan was lowered from.
        self.n_gates = n_gates
        #: Unitary gate count of the circuit as submitted (pre-optimisation).
        self.source_gates = source_gates
        #: Gates absorbed into fused dense/single blocks.
        self.fused_gates = fused_gates
        #: Diagonal steps absorbed into combined product-diagonal steps.
        self.batched_diagonals = batched_diagonals
        #: Minimum state size (amplitudes) before ``execute(pool=...)`` chunks.
        self.chunk_threshold = (
            DEFAULT_CHUNK_THRESHOLD if chunk_threshold is None else int(chunk_threshold)
        )
        #: Amplitude precision tier ("double" = complex128, "single" =
        #: complex64); :attr:`dtype` is the matching numpy dtype.
        self.precision = resolve_precision(precision)
        self.dtype = np.dtype(PRECISION_DTYPES[self.precision])
        self._steps = tuple(steps)
        self._parametric_steps = tuple(s for s in self._steps if s.parametric is not None)
        self._shape = (2,) * self.n_qubits
        self._dim = 1 << self.n_qubits
        self._requires_binding = requires_binding
        self._tls = threading.local()
        #: Memoised chunk programs keyed by worker count (built on first
        #: chunked execute; benign if two threads race to build one).
        self._chunk_programs: dict[int, tuple] = {}
        #: Provenance for cross-process replay (see :meth:`replay_descriptor`):
        #: the circuit the plan was lowered from, the compile options that
        #: produced it, and — for plans bound from a parametric template —
        #: the parameter values of the current binding.  Set by the
        #: compilers/binders; plans built directly from steps have none.
        self.source_circuit: CompositeInstruction | None = None
        self.compile_options: dict[str, object] = {}
        self.bound_params: dict[str, float] | None = None

    # -- introspection -------------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self._steps)

    @property
    def steps(self) -> tuple[PlanStep, ...]:
        return self._steps

    @property
    def has_reset(self) -> bool:
        return any(s.tag == KERNEL_RESET for s in self._steps)

    def kernel_counts(self) -> Counter:
        """Histogram of kernel classes, e.g. ``{"single": 3, "diagonal": 2}``."""
        return Counter(step.kernel for step in self._steps)

    def memory_bytes(self) -> int:
        """Resident bytes of this plan's precomputed kernel data.

        Walks every step's slots and sums the ndarray payloads (dense
        matrices, product diagonals, gather/permutation index tables) —
        the structures that actually scale with circuit width and depth.
        Scalars and per-thread scratch are noise by comparison and are
        ignored; admission control uses this as the plan-cache term of the
        service's memory budget.
        """
        total = 0
        seen: set[int] = set()
        for step in self._steps:
            for slot in PlanStep.__slots__:
                value = getattr(step, slot, None)
                if isinstance(value, np.ndarray) and id(value) not in seen:
                    seen.add(id(value))
                    total += value.nbytes
        return total

    def replay_descriptor(
        self,
    ) -> tuple[CompositeInstruction, dict[str, object], dict[str, float] | None] | None:
        """``(circuit, compile_options, params)`` recompiling this plan
        elsewhere, or ``None`` when the plan cannot be shipped.

        Plans never cross process boundaries (thread-local scratch, numpy
        views); the shared-memory pool instead ships the *source circuit*
        by canonical JSON + content hash and lets each worker compile an
        identical plan into its own cache.  That requires the provenance
        recorded at compile time — and, for a plan bound from a parametric
        template, the values of the current binding.
        """
        circuit = self.source_circuit
        if circuit is None:
            return None
        if self._parametric_steps and self.bound_params is None:
            return None
        params = dict(self.bound_params) if self.bound_params is not None else None
        return circuit, dict(self.compile_options), params

    # -- execution -----------------------------------------------------------
    def new_state(self) -> np.ndarray:
        """A fresh |0...0> amplitude array in the plan's width and dtype."""
        data = np.zeros(self._dim, dtype=self.dtype)
        data[0] = 1.0
        return data

    def _scratch(self) -> np.ndarray:
        spare = getattr(self._tls, "spare", None)
        if spare is None or spare.size != self._dim or spare.dtype != self.dtype:
            spare = np.empty(self._dim, dtype=self.dtype)
        return spare

    def execute(
        self,
        data: np.ndarray,
        rng: np.random.Generator | None = None,
        *,
        pool=None,
    ) -> np.ndarray:
        """Run every step over ``data``; returns the resulting state array.

        The returned array may be a recycled scratch buffer rather than
        ``data`` itself — always use the return value.

        ``pool`` is a :class:`ChunkPool` — the thread-pool
        :class:`~repro.simulator.parallel_engine.ParallelSimulationEngine`
        or the shared-memory :class:`~repro.exec.shm.SharedStatePool`
        (legacy duck-typed pools exposing only ``effective_threads()`` +
        ``chunk_pool(workers)`` keep working).  When given — and the state
        holds at least :attr:`chunk_threshold` amplitudes — each kernel is
        split into disjoint sub-views executed on the pool's workers.
        Chunks perform exactly the serial kernel's per-amplitude
        arithmetic, so the chunked result is bitwise identical to the
        serial one.  Never pass a pool from *inside* one of its own worker
        threads (the barrier would deadlock a saturated pool); the
        trajectory paths therefore only chunk single-chunk runs.
        """
        if self._requires_binding:
            raise ExecutionError(
                f"plan {self.name!r} has unbound parameters; bind it through "
                "a ParametricExecutionPlan before executing"
            )
        if data.ndim != 1 or data.size != self._dim:
            raise ExecutionError(
                f"state of shape {data.shape} does not match the plan's "
                f"{self.n_qubits} qubit(s)"
            )
        if data.dtype != self.dtype or not data.flags.c_contiguous:
            data = np.ascontiguousarray(data, dtype=self.dtype)
        if pool is not None and self._dim >= self.chunk_threshold:
            replay = getattr(pool, "replay_plan", None)
            if replay is not None:
                result = replay(self, data, rng=rng)
                if result is not None:
                    return result
            else:
                workers = int(pool.effective_threads())
                if workers > 1:
                    return self._execute_chunked(data, rng, pool, workers)
        cur = data
        spare = self._scratch()
        shape = self._shape
        apply_step = self._apply_step
        profiler = active_profiler()
        token = active_cancel_token()
        if token is not None:
            # Cancellable replay: one flag/clock check per step.  A tripped
            # token raises the typed error between kernels — the state is
            # abandoned, never left half-applied within a kernel.
            check = token.check
            perf_counter = time.perf_counter
            for step in self._steps:
                check()
                if profiler is None:
                    cur, spare = apply_step(step, cur, spare, shape, rng)
                else:
                    t0 = perf_counter()
                    cur, spare = apply_step(step, cur, spare, shape, rng)
                    profiler.record_kernel(step.kernel, perf_counter() - t0)
        elif profiler is None:
            for step in self._steps:
                cur, spare = apply_step(step, cur, spare, shape, rng)
        else:
            perf_counter = time.perf_counter
            for step in self._steps:
                t0 = perf_counter()
                cur, spare = apply_step(step, cur, spare, shape, rng)
                profiler.record_kernel(step.kernel, perf_counter() - t0)
        self._tls.spare = spare
        return cur

    # -- chunk-parallel execution --------------------------------------------
    def chunk_program(self, workers: int) -> tuple:
        """The per-step chunk decomposition for ``workers`` workers.

        Memoised per worker count (benign if two threads race to build
        one); chunk specs hold only geometry and read the step's matrices /
        diagonals at run time, so parametric rebinding keeps working.  A
        ``None`` entry means that step runs serially.  The decomposition is
        deterministic in ``(plan, workers)``, which is what lets every
        shared-memory worker process rebuild the identical program from its
        own compiled copy of the plan.
        """
        program = self._chunk_programs.get(workers)
        if program is None:
            program = tuple(
                _chunk_step(step, self.n_qubits, self._dim, workers)
                for step in self._steps
            )
            self._chunk_programs[workers] = program
        return program

    def _execute_chunked(
        self, cur: np.ndarray, rng, pool, workers: int
    ) -> np.ndarray:
        """Replay every kernel as disjoint chunks on the pool's threads."""
        program = self.chunk_program(workers)
        executor = pool.chunk_pool(workers)

        def pool_map(fn, tasks):
            # list() both joins the chunks (barrier) and surfaces exceptions.
            list(executor.map(fn, tasks))

        spare = self._scratch()
        shape = self._shape
        profiler = active_profiler()
        token = active_cancel_token()
        if token is not None:
            check = token.check
            perf_counter = time.perf_counter
            for step, chunked in zip(self._steps, program):
                check()
                t0 = perf_counter()
                if chunked is None:
                    cur, spare = self._apply_step(step, cur, spare, shape, rng)
                else:
                    cur, spare = chunked.run(pool_map, cur, spare, shape)
                if profiler is not None:
                    profiler.record_kernel(step.kernel, perf_counter() - t0)
        elif profiler is None:
            for step, chunked in zip(self._steps, program):
                if chunked is None:
                    cur, spare = self._apply_step(step, cur, spare, shape, rng)
                else:
                    cur, spare = chunked.run(pool_map, cur, spare, shape)
        else:
            perf_counter = time.perf_counter
            for step, chunked in zip(self._steps, program):
                t0 = perf_counter()
                if chunked is None:
                    cur, spare = self._apply_step(step, cur, spare, shape, rng)
                else:
                    cur, spare = chunked.run(pool_map, cur, spare, shape)
                profiler.record_kernel(step.kernel, perf_counter() - t0)
        self._tls.spare = spare
        return cur

    def _apply_step(
        self,
        step: PlanStep,
        cur: np.ndarray,
        spare: np.ndarray,
        shape: tuple,
        rng,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serial application of one step — the single definition of every
        kernel's arithmetic, shared by the serial execute loop and the
        chunked loop's fallback (resets, degenerate split geometries)."""
        tag = step.tag
        if tag == KERNEL_SINGLE:
            view = cur.reshape(-1, 2, step.block)
            s0 = view[:, 0, :].copy()
            s1 = view[:, 1, :]
            view[:, 0, :] = step.m00 * s0 + step.m01 * s1
            view[:, 1, :] = step.m10 * s0 + step.m11 * s1
        elif tag == KERNEL_DIAGONAL:
            psi = cur.reshape(shape)
            if step.diag_nd is not None:
                psi *= step.diag_nd
            else:
                for idx, d in zip(step.diag_idx, step.diag):
                    if d != 1.0:
                        psi[idx] *= d
        elif tag == KERNEL_PERMUTATION:
            psi = cur.reshape(shape)
            for a, b in step.pairs:
                tmp = psi[a].copy()
                psi[a] = psi[b]
                psi[b] = tmp
        elif tag == KERNEL_CONTROLLED:
            psi = cur.reshape(shape)
            sub = np.moveaxis(psi[step.ctrl_index], step.sub_target_axis, 0)
            s0 = sub[0].copy()
            s1 = sub[1]
            sub[0] = step.m00 * s0 + step.m01 * s1
            sub[1] = step.m10 * s0 + step.m11 * s1
        elif tag == KERNEL_DENSE:
            np.take(cur, step.perm, out=spare)
            np.matmul(
                step.matrix,
                spare.reshape(step.dim_k, -1),
                out=cur.reshape(step.dim_k, -1),
            )
            np.take(cur, step.inv_perm, out=spare)
            cur, spare = spare, cur
        elif tag == KERNEL_GATHER:
            np.take(cur, step.gather, out=spare)
            cur, spare = spare, cur
        else:  # KERNEL_RESET
            if rng is None:
                raise ExecutionError(
                    "plan contains RESET instructions; execute() needs an rng"
                )
            cur = self._reset(cur, step, rng)
        return cur, spare

    def _reset(
        self, cur: np.ndarray, step: PlanStep, rng: np.random.Generator
    ) -> np.ndarray:
        # Mirrors StateVector.measure + conditional X, operation for operation,
        # so trajectory streams stay bit-identical to the gate-by-gate path.
        view = cur.reshape(-1, 2, step.block)
        p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
        outcome = int(rng.random() < p1)
        prob = p1 if outcome == 1 else 1.0 - p1
        if prob <= 0.0:
            raise ExecutionError("measurement outcome has zero probability")
        view[:, 1 - outcome, :] = 0.0
        cur /= np.sqrt(prob)
        if outcome == 1:
            psi = cur.reshape(self._shape)
            for a, b in step.pairs:
                tmp = psi[a].copy()
                psi[a] = psi[b]
                psi[b] = tmp
        return cur

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(name={self.name!r}, n_qubits={self.n_qubits}, "
            f"n_steps={self.n_steps})"
        )


class ParametricExecutionPlan:
    """A compiled plan for a *symbolic* circuit, re-bound per parameter set.

    Compilation (IR passes, kernel classification, geometry) happens once;
    :meth:`bind` only recomputes the matrices of parametric steps — in
    place, on a per-thread copy of the step list, so the VQE/QAOA hot loop
    pays a handful of 2x2 rebuilds per iteration while concurrent binders
    on other threads never interfere.
    """

    is_parametric = True

    def __init__(self, template: ExecutionPlan, parameter_names: tuple[str, ...]):
        self._template = template
        self.parameter_names = tuple(parameter_names)
        self._tls = threading.local()

    # Delegated metadata -----------------------------------------------------
    @property
    def n_qubits(self) -> int:
        return self._template.n_qubits

    @property
    def name(self) -> str:
        return self._template.name

    @property
    def n_steps(self) -> int:
        return self._template.n_steps

    @property
    def depth(self) -> int:
        return self._template.depth

    @property
    def n_gates(self) -> int:
        return self._template.n_gates

    @property
    def source_gates(self) -> int:
        return self._template.source_gates

    @property
    def measured_qubits(self) -> tuple[int, ...]:
        return self._template.measured_qubits

    @property
    def has_reset(self) -> bool:
        return self._template.has_reset

    @property
    def batched_diagonals(self) -> int:
        return self._template.batched_diagonals

    @property
    def chunk_threshold(self) -> int:
        return self._template.chunk_threshold

    @property
    def precision(self) -> str:
        return self._template.precision

    @property
    def dtype(self) -> np.dtype:
        return self._template.dtype

    @property
    def template_steps(self) -> tuple[PlanStep, ...]:
        """The unbound step sequence (for introspection/cost modelling)."""
        return self._template.steps

    def kernel_counts(self) -> Counter:
        return self._template.kernel_counts()

    def memory_bytes(self) -> int:
        """Template payload bytes (per-thread bound copies share ndarrays)."""
        return self._template.memory_bytes()

    # Binding ----------------------------------------------------------------
    def _thread_plan(self) -> ExecutionPlan:
        plan = getattr(self._tls, "plan", None)
        if plan is None:
            template = self._template
            steps = [
                step.clone() if step.parametric is not None else step
                for step in template.steps
            ]
            plan = ExecutionPlan(
                template.n_qubits,
                steps,
                name=template.name,
                measured_qubits=template.measured_qubits,
                depth=template.depth,
                n_gates=template.n_gates,
                source_gates=template.source_gates,
                fused_gates=template.fused_gates,
                batched_diagonals=template.batched_diagonals,
                chunk_threshold=template.chunk_threshold,
                requires_binding=True,
                precision=template.precision,
            )
            # Provenance carries over so a bound plan can still be shipped
            # (recompiled + rebound) by the shared-memory process pool.
            plan.source_circuit = template.source_circuit
            plan.compile_options = dict(template.compile_options)
            self._tls.plan = plan
        return plan

    def bind(
        self, values: Mapping[str, float] | Sequence[float]
    ) -> ExecutionPlan:
        """Return this thread's concrete plan with rotations re-bound.

        Every call on one thread returns the *same* plan object mutated in
        place — that is the point (no per-iteration compilation or copies).
        Consequently a plan returned by an earlier ``bind`` is invalidated
        by the next ``bind`` on that thread: execute each binding before
        requesting the next, or compile separate parametric plans when two
        bindings must be alive at once.
        """
        mapping = self._normalize(values)
        plan = self._thread_plan()
        for step in plan._parametric_steps:
            step.rebind(mapping)
        plan._requires_binding = False
        plan.bound_params = mapping
        return plan

    def _normalize(
        self, values: Mapping[str, float] | Sequence[float]
    ) -> dict[str, float]:
        if values is None:
            raise ExecutionError(
                f"plan {self.name!r} has unbound parameters "
                f"{list(self.parameter_names)}; provide values"
            )
        if isinstance(values, Mapping):
            return {str(k): float(v) for k, v in values.items()}
        values_seq = [float(v) for v in values]
        if len(values_seq) != len(self.parameter_names):
            raise ExecutionError(
                f"expected {len(self.parameter_names)} parameter value(s) for "
                f"{list(self.parameter_names)}, got {len(values_seq)}"
            )
        return dict(zip(self.parameter_names, values_seq))

    def __repr__(self) -> str:
        return (
            f"ParametricExecutionPlan(name={self.name!r}, "
            f"parameters={list(self.parameter_names)}, n_steps={self.n_steps})"
        )


# ---------------------------------------------------------------------------
# Chunk-parallel kernel splitting
#
# Every spec below partitions a kernel's amplitude sweep into disjoint
# sub-views and runs the *identical* per-amplitude arithmetic on each, so
# chunked replay is bitwise identical to serial replay.  Specs store only
# geometry (ranges, index tuples) and read the step's matrices/diagonals at
# run time — parametric rebinding therefore composes with chunking.
# ---------------------------------------------------------------------------


def _split_ranges(total: int, parts: int) -> tuple[tuple[int, int], ...]:
    """Near-equal contiguous ``[lo, hi)`` ranges covering ``[0, total)``."""
    bounds = np.linspace(0, total, parts + 1).astype(int)
    return tuple(
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if lo < hi
    )


def _split_assignments(
    n_qubits: int, busy: tuple[int, ...], workers: int, reserve: int = 0
) -> list[dict[int, int]] | None:
    """Bit assignments over the highest qubits *not* in ``busy``.

    Fixing ``h`` free qubits partitions the state into ``2**h`` disjoint
    sub-views a kernel acting only on ``busy`` qubits never couples; the
    assignments are the chunk tasks.  ``reserve`` keeps that many free
    qubits *unfixed* — kernels whose arithmetic must stay on NumPy's array
    ufunc loops reserve one so no task ever degenerates to scalar element
    ops (the scalar complex-multiply path rounds differently, which would
    break the chunked == serial bitwise guarantee).  Returns ``None`` when
    no split is possible (the caller falls back to serial for that step).
    """
    busy_set = set(busy)
    free = [q for q in range(n_qubits - 1, -1, -1) if q not in busy_set]
    h = 0
    while (1 << h) < workers and h < len(free) - reserve:
        h += 1
    if h == 0:
        return None
    split_qubits = free[:h]
    return [
        {q: (bits >> i) & 1 for i, q in enumerate(split_qubits)}
        for bits in range(1 << h)
    ]


def _merge_index(
    base: tuple, assignment: Mapping[int, int], n_qubits: int
) -> tuple:
    """``base`` axis-index tuple with ``assignment``'s qubit bits fixed too."""
    merged = list(base)
    for qubit, bit in assignment.items():
        merged[n_qubits - 1 - qubit] = bit
    return tuple(merged)


class _ChunkSpec:
    """Base chunk spec: a task list plus one per-task kernel application.

    The uniform ``tasks`` / ``apply`` / ``swaps`` surface is what lets two
    very different drivers share the arithmetic: the thread path maps
    ``apply`` over the whole task list on an executor, while each
    shared-memory worker process applies only its slice
    (``tasks[index::workers]``) of the same deterministic decomposition,
    with a barrier per step.  ``swaps`` tells both drivers whether the
    step's output landed in the scratch buffer.
    """

    __slots__ = ("step", "tasks")
    swaps = False

    def apply(self, task, cur, spare, shape) -> None:
        raise NotImplementedError

    def run(self, pool_map, cur, spare, shape):
        apply = self.apply
        pool_map(lambda task: apply(task, cur, spare, shape), self.tasks)
        return (spare, cur) if self.swaps else (cur, spare)


class _ChunkSingle(_ChunkSpec):
    """Row- (or, for top-qubit targets, column-) sliced single-qubit update."""

    __slots__ = ("by_rows",)

    def __init__(self, step: PlanStep, dim: int, workers: int):
        self.step = step
        rows = dim >> (step.targets[0] + 1)
        self.by_rows = rows >= workers
        self.tasks = _split_ranges(rows if self.by_rows else step.block, workers)

    def apply(self, task, cur, spare, shape):
        step = self.step
        view = cur.reshape(-1, 2, step.block)
        lo, hi = task
        block = view[lo:hi] if self.by_rows else view[:, :, lo:hi]
        s0 = block[:, 0, :].copy()
        s1 = block[:, 1, :]
        block[:, 0, :] = step.m00 * s0 + step.m01 * s1
        block[:, 1, :] = step.m10 * s0 + step.m11 * s1


class _ChunkControlled(_ChunkSpec):
    """Controlled 2x2 update split over assignments of free high qubits."""

    __slots__ = ()

    def __init__(self, step: PlanStep, n_qubits: int, assignments):
        control, target = step.targets
        target_axis = n_qubits - 1 - target
        self.step = step
        tasks = []
        for assignment in assignments:
            idx = _merge_index(step.ctrl_index, assignment, n_qubits)
            fixed_axes = [i for i, v in enumerate(idx) if not isinstance(v, slice)]
            pos = target_axis - sum(1 for a in fixed_axes if a < target_axis)
            tasks.append((idx, pos))
        self.tasks = tasks

    def apply(self, task, cur, spare, shape):
        step = self.step
        psi = cur.reshape(shape)
        idx, pos = task
        sub = np.moveaxis(psi[idx], pos, 0)
        s0 = sub[0].copy()
        s1 = sub[1]
        sub[0] = step.m00 * s0 + step.m01 * s1
        sub[1] = step.m10 * s0 + step.m11 * s1


class _ChunkDiagonalBroadcast(_ChunkSpec):
    """Broadcast-diagonal multiply over contiguous flat slabs.

    Splitting fixes the *leading* tensor axes, so each task is one
    contiguous flat range; the matching ``diag_nd`` sub-view (axes of size
    1 are indexed at 0) broadcasts against the slab exactly as the full
    array does against the full state.
    """

    __slots__ = ("slab_shape",)

    def __init__(self, step: PlanStep, n_qubits: int, dim: int, workers: int):
        h = 0
        while (1 << h) < workers and h < n_qubits - 1:
            h += 1
        self.step = step
        self.slab_shape = (2,) * (n_qubits - h)
        slab = dim >> h
        nd_shape = step.diag_nd.shape
        tasks = []
        for j in range(1 << h):
            prefix = tuple(
                ((j >> (h - 1 - a)) & 1) if nd_shape[a] == 2 else 0
                for a in range(h)
            )
            tasks.append((j * slab, (j + 1) * slab, prefix))
        self.tasks = tasks

    def apply(self, task, cur, spare, shape):
        lo, hi, prefix = task
        view = cur[lo:hi].reshape(self.slab_shape)
        view *= self.step.diag_nd[prefix]


class _ChunkDiagonalStrided(_ChunkSpec):
    """Strided diagonal multiplies split over free-high-qubit assignments."""

    __slots__ = ()

    def __init__(self, step: PlanStep, n_qubits: int, assignments):
        self.step = step
        self.tasks = [
            tuple(
                (slot, _merge_index(idx, assignment, n_qubits))
                for slot, idx in enumerate(step.diag_idx)
            )
            for assignment in assignments
        ]

    def apply(self, task, cur, spare, shape):
        diag = self.step.diag
        psi = cur.reshape(shape)
        for slot, idx in task:
            d = diag[slot]
            if d != 1.0:
                psi[idx] *= d


class _ChunkPermutation(_ChunkSpec):
    """Slice exchanges split over free-high-qubit assignments."""

    __slots__ = ()

    def __init__(self, step: PlanStep, n_qubits: int, assignments):
        self.step = step
        self.tasks = [
            tuple(
                (
                    _merge_index(a, assignment, n_qubits),
                    _merge_index(b, assignment, n_qubits),
                )
                for a, b in step.pairs
            )
            for assignment in assignments
        ]

    def apply(self, task, cur, spare, shape):
        psi = cur.reshape(shape)
        for a, b in task:
            tmp = psi[a].copy()
            psi[a] = psi[b]
            psi[b] = tmp


class _ChunkGather(_ChunkSpec):
    """Whole-state index gather split into contiguous output ranges."""

    __slots__ = ()
    swaps = True

    def __init__(self, step: PlanStep, dim: int, workers: int):
        self.step = step
        self.tasks = _split_ranges(dim, workers)

    def apply(self, task, cur, spare, shape):
        lo, hi = task
        np.take(cur, self.step.gather[lo:hi], out=spare[lo:hi])


class _ChunkDense(_ChunkSpec):
    """Fused dense block: parallel gather and scatter around the matmul.

    The two indexed-copy passes (the memory-bound majority of the kernel)
    split into contiguous output ranges; the small ``(2^k, 2^k) @ (2^k, M)``
    product itself runs as the *exact* serial call — BLAS picks different
    (differently-rounded) microkernels per operand shape, so slicing its
    columns would forfeit the bitwise-identity guarantee.  The three phases
    are exposed individually (``gather_part`` / ``matmul`` /
    ``scatter_part``) because the shared-memory driver needs a barrier
    between each: all workers gather, one worker multiplies, all workers
    scatter.
    """

    __slots__ = ()
    swaps = True

    def __init__(self, step: PlanStep, dim: int, workers: int):
        self.step = step
        self.tasks = _split_ranges(dim, workers)

    def gather_part(self, task, cur, spare):
        lo, hi = task
        np.take(cur, self.step.perm[lo:hi], out=spare[lo:hi])

    def matmul(self, cur, spare):
        step = self.step
        np.matmul(
            step.matrix,
            spare.reshape(step.dim_k, -1),
            out=cur.reshape(step.dim_k, -1),
        )

    def scatter_part(self, task, cur, spare):
        lo, hi = task
        np.take(cur, self.step.inv_perm[lo:hi], out=spare[lo:hi])

    def run(self, pool_map, cur, spare, shape):
        pool_map(lambda span: self.gather_part(span, cur, spare), self.tasks)
        self.matmul(cur, spare)
        pool_map(lambda span: self.scatter_part(span, cur, spare), self.tasks)
        return spare, cur


def _chunk_step(step: PlanStep, n_qubits: int, dim: int, workers: int):
    """Build the chunk spec for one step (``None`` = run it serially)."""
    tag = step.tag
    if tag == KERNEL_SINGLE:
        spec = _ChunkSingle(step, dim, workers)
        return spec if spec.tasks else None
    if tag == KERNEL_DIAGONAL:
        if step.diag_nd is not None:
            return _ChunkDiagonalBroadcast(step, n_qubits, dim, workers)
        # reserve=1: the strided multiplies must keep at least one sliced
        # axis per task, staying on the array ufunc loops (see
        # _split_assignments).
        assignments = _split_assignments(n_qubits, step.targets, workers, reserve=1)
        return (
            _ChunkDiagonalStrided(step, n_qubits, assignments)
            if assignments
            else None
        )
    if tag == KERNEL_CONTROLLED:
        assignments = _split_assignments(n_qubits, step.targets, workers)
        return (
            _ChunkControlled(step, n_qubits, assignments) if assignments else None
        )
    if tag == KERNEL_PERMUTATION:
        assignments = _split_assignments(n_qubits, step.targets, workers)
        return (
            _ChunkPermutation(step, n_qubits, assignments) if assignments else None
        )
    if tag == KERNEL_GATHER:
        return _ChunkGather(step, dim, workers)
    if tag == KERNEL_DENSE:
        return _ChunkDense(step, dim, workers)
    return None  # KERNEL_RESET: global reduction + RNG draw stays serial


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_plan(
    circuit: CompositeInstruction,
    n_qubits: int | None = None,
    *,
    optimize: bool = True,
    fusion_max_qubits: int = DEFAULT_FUSION_MAX_QUBITS,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
) -> ExecutionPlan:
    """Lower a bound circuit into an :class:`ExecutionPlan`.

    ``n_qubits`` widens the plan beyond the circuit's own width (the state
    register may be larger than the circuit).  ``optimize`` runs the default
    IR pass pipeline first; ``fusion_max_qubits`` bounds dense-block fusion
    (0 or 1 disables it, 3 is the maximum).  ``batch_diagonals`` collapses
    adjacent runs of diagonal steps into combined product-diagonal steps
    (distribution-equivalent; reassociating the products can shift
    amplitudes by ulps, so pass ``False`` when bit-exact equality with the
    gate-by-gate path is required).  ``chunk_threshold`` sets the minimum
    state size for chunk-parallel replay (``None`` uses
    :data:`DEFAULT_CHUNK_THRESHOLD`; it never changes results, only how
    ``execute(pool=...)`` schedules them).  ``precision`` selects the
    amplitude dtype (``"double"``/``"single"``); unlike the other knobs it
    *changes results* (within the documented fidelity bound) and is part
    of the plan's identity.
    """
    if circuit.is_parameterized:
        raise ExecutionError(
            f"circuit {circuit.name!r} has unbound parameters; use "
            "compile_parametric_plan() for symbolic circuits"
        )
    return _compile(
        circuit,
        n_qubits,
        optimize=optimize,
        fusion_max_qubits=fusion_max_qubits,
        batch_diagonals=batch_diagonals,
        chunk_threshold=chunk_threshold,
        precision=precision,
    )


def compile_parametric_plan(
    circuit: CompositeInstruction,
    n_qubits: int | None = None,
    *,
    optimize: bool = True,
    fusion_max_qubits: int = DEFAULT_FUSION_MAX_QUBITS,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
) -> ParametricExecutionPlan:
    """Compile a symbolic circuit once; re-bind rotation matrices per call.

    Diagonal batching only merges *concrete* diagonal steps — parametric
    rotations keep their own steps so in-place rebinding stays possible.
    """
    if not circuit.is_parameterized:
        raise ExecutionError(
            f"circuit {circuit.name!r} has no unbound parameters; use compile_plan()"
        )
    names = tuple(sorted(p.name for p in circuit.free_parameters))
    template = _compile(
        circuit,
        n_qubits,
        optimize=optimize,
        fusion_max_qubits=fusion_max_qubits,
        batch_diagonals=batch_diagonals,
        chunk_threshold=chunk_threshold,
        precision=precision,
        requires_binding=True,
    )
    return ParametricExecutionPlan(template, names)


def _compile(
    circuit: CompositeInstruction,
    n_qubits: int | None,
    *,
    optimize: bool,
    fusion_max_qubits: int,
    batch_diagonals: bool = True,
    chunk_threshold: int | None = None,
    precision: str = DEFAULT_PRECISION,
    requires_binding: bool = False,
) -> ExecutionPlan:
    precision = resolve_precision(precision)
    width = max(circuit.n_qubits, 1 if n_qubits is None else int(n_qubits), 1)
    if circuit.n_qubits > width:
        raise ExecutionError(
            f"circuit uses {circuit.n_qubits} qubit(s) but the plan is "
            f"compiled for {width}"
        )
    if fusion_max_qubits < 0 or fusion_max_qubits > 3:
        raise ExecutionError(
            f"fusion_max_qubits must be between 0 and 3, got {fusion_max_qubits}"
        )
    source_gates = circuit.n_gates
    measured = circuit.measured_qubits()
    optimized = default_pass_manager().run(circuit) if optimize else circuit

    fused_seq, fused_gates = _fuse(list(optimized), fusion_max_qubits)

    perm_cache: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}
    steps: list[PlanStep] = []
    for item in fused_seq:
        if isinstance(item, _FusedBlock):
            steps.append(_materialize_block(item, width, perm_cache))
            continue
        step = _classify(item, width, perm_cache)
        if step is not None:
            steps.append(step)

    batched_diagonals = 0
    if batch_diagonals:
        steps, batched_diagonals = _batch_diagonal_steps(steps, width)

    if precision == "single":
        # Downcast the ndarray kernel payloads so the hot sweeps move half
        # the bytes; scalar payloads stay Python complex (NumPy's weak
        # scalar promotion keeps complex64 arrays complex64 under them).
        dtype = PRECISION_DTYPES["single"]
        for step in steps:
            matrix = getattr(step, "matrix", None)
            if isinstance(matrix, np.ndarray):
                step.matrix = np.ascontiguousarray(matrix, dtype=dtype)
            diag_nd = getattr(step, "diag_nd", None)
            if isinstance(diag_nd, np.ndarray):
                step.diag_nd = np.ascontiguousarray(diag_nd, dtype=dtype)

    plan = ExecutionPlan(
        width,
        steps,
        name=circuit.name,
        measured_qubits=measured,
        depth=optimized.depth(),
        n_gates=optimized.n_gates,
        source_gates=source_gates,
        fused_gates=fused_gates,
        batched_diagonals=batched_diagonals,
        chunk_threshold=chunk_threshold,
        requires_binding=requires_binding,
        precision=precision,
    )
    # Recorded so the shared-memory pool can ship the *source* circuit by
    # content hash and have every worker compile a bitwise-identical plan
    # with the same options (see ExecutionPlan.replay_descriptor).
    plan.source_circuit = circuit
    plan.compile_options = {
        "optimize": bool(optimize),
        "fusion_max_qubits": int(fusion_max_qubits),
        "batch_diagonals": bool(batch_diagonals),
        "chunk_threshold": chunk_threshold,
        "precision": precision,
    }
    return plan


# -- diagonal batching -------------------------------------------------------


def _batch_diagonal_steps(
    steps: Sequence[PlanStep],
    n_qubits: int,
    max_qubits: int = DEFAULT_DIAGONAL_BATCH_MAX_QUBITS,
) -> tuple[list[PlanStep], int]:
    """Collapse adjacent runs of concrete diagonal steps into one step each.

    Diagonal operators commute, so a contiguous run multiplies into a
    single product diagonal over the union of touched qubits (capped at
    ``max_qubits`` so neither the diagonal table nor the strided kernel
    blows up).  Parametric diagonal steps (symbolic RZ/CPHASE/CRZ) break
    runs: they must stay individually rebindable.  Returns the new step
    list and the number of source steps absorbed into batches.
    """
    out: list[PlanStep] = []
    run: list[PlanStep] = []
    union: list[int] = []
    absorbed = 0

    def flush() -> None:
        nonlocal absorbed
        if len(run) >= 2:
            out.append(_merge_diagonal_run(run, tuple(union), n_qubits))
            absorbed += len(run)
        else:
            out.extend(run)
        run.clear()
        union.clear()

    for step in steps:
        if step.tag == KERNEL_DIAGONAL and step.parametric is None:
            fresh = [q for q in step.targets if q not in union]
            if run and len(union) + len(fresh) > max_qubits:
                flush()
                fresh = list(step.targets)
            run.append(step)
            union.extend(fresh)
        else:
            flush()
            out.append(step)
    flush()
    return out, absorbed


def _merge_diagonal_run(
    run: Sequence[PlanStep], union: tuple[int, ...], n_qubits: int
) -> PlanStep:
    """One product-diagonal step equivalent to applying ``run`` in order."""
    k = len(union)
    diag = np.ones(1 << k, dtype=complex)
    idx = np.arange(1 << k)
    for step in run:
        positions = [union.index(q) for q in step.targets]
        local = np.zeros(1 << k, dtype=np.intp)
        for bit, pos in enumerate(positions):
            local |= ((idx >> pos) & 1) << bit
        diag *= np.asarray(step.diag, dtype=complex)[local]
    return _diagonal_step("DIAG_BATCH", union, diag, n_qubits)


# -- dense-block fusion ------------------------------------------------------


class _FusedBlock:
    """A run of adjacent overlapping gates folded into one dense matrix."""

    __slots__ = ("targets", "matrix", "count")

    def __init__(self, targets: tuple[int, ...], matrix: np.ndarray, count: int):
        self.targets = targets
        self.matrix = matrix
        self.count = count


def _fusable(inst: Instruction, max_qubits: int) -> bool:
    if inst.is_parameterized or not inst.is_unitary or inst.is_composite:
        return False
    k = len(inst.qubits)
    if k == 0 or k > max_qubits:
        return False
    if inst.name in _PERMUTATION_GATES or isinstance(inst, PermutationGate):
        return False
    if k >= 2 and inst.name in _DIAGONAL_GATES:
        return False
    return True


def _fuse(
    sequence: list[Instruction], max_qubits: int
) -> tuple[list[Instruction | _FusedBlock], int]:
    """Greedily fold adjacent overlapping fusable gates into dense blocks.

    Only *contiguous* gates whose target sets overlap are fused (disjoint
    gates are never reordered), so fusion preserves program order exactly.
    Blocks that end up holding a single gate are emitted as the original
    instruction so it still reaches its specialised kernel.
    """
    if max_qubits < 2:
        return list(sequence), 0

    out: list[Instruction | _FusedBlock] = []
    group: _FusedBlock | None = None
    fused_gates = 0

    def flush() -> None:
        nonlocal group, fused_gates
        if group is None:
            return
        if group.count == 1:
            out.append(group_first[0])
        else:
            fused_gates += group.count
            out.append(group)
        group = None

    group_first: list[Instruction] = []
    for inst in sequence:
        if _fusable(inst, max_qubits):
            if group is not None:
                union = group.targets + tuple(
                    q for q in inst.qubits if q not in group.targets
                )
                if len(union) <= max_qubits and set(inst.qubits) & set(group.targets):
                    lifted_g = _expand_matrix(group.matrix, group.targets, union)
                    lifted_i = _expand_matrix(inst.matrix(), inst.qubits, union)
                    group = _FusedBlock(union, lifted_i @ lifted_g, group.count + 1)
                    continue
                flush()
            group = _FusedBlock(tuple(inst.qubits), np.asarray(inst.matrix(), dtype=complex), 1)
            group_first = [inst]
        else:
            flush()
            out.append(inst)
    flush()
    return out, fused_gates


def _expand_matrix(
    matrix: np.ndarray, targets: Sequence[int], union: tuple[int, ...]
) -> np.ndarray:
    """Lift ``matrix`` over ``targets`` to the basis of ``union`` qubits.

    Local bit ``i`` of the result corresponds to ``union[i]`` (LSB first),
    matching the gate-matrix convention used throughout the IR.
    """
    targets = tuple(targets)
    if targets == union:
        return np.asarray(matrix, dtype=complex)
    k_u = len(union)
    positions = [union.index(t) for t in targets]
    dim = 1 << k_u
    result = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        src_local = 0
        for bit, pos in enumerate(positions):
            src_local |= ((col >> pos) & 1) << bit
        rest = col
        for pos in positions:
            rest &= ~(1 << pos)
        for row_local in range(matrix.shape[0]):
            value = matrix[row_local, src_local]
            if value == 0:
                continue
            row = rest
            for bit, pos in enumerate(positions):
                row |= ((row_local >> bit) & 1) << pos
            result[row, col] = value
    return result


# -- classification ----------------------------------------------------------


def _axis_index(n_qubits: int, assignments: dict[int, int]) -> tuple:
    """Index tuple into a ``(2,)*n`` view fixing the given qubit bits."""
    index: list = [slice(None)] * n_qubits
    for qubit, bit in assignments.items():
        index[n_qubits - 1 - qubit] = bit
    return tuple(index)


def _single_step(name, target, matrix, n_qubits, parametric=None) -> PlanStep:
    step = PlanStep(KERNEL_SINGLE, name, (target,))
    step.block = 1 << target
    step.m00 = complex(matrix[0, 0])
    step.m01 = complex(matrix[0, 1])
    step.m10 = complex(matrix[1, 0])
    step.m11 = complex(matrix[1, 1])
    step.parametric = parametric
    return step


def _diagonal_step(name, targets, diag, n_qubits, parametric=None) -> PlanStep:
    step = PlanStep(KERNEL_DIAGONAL, name, tuple(targets))
    k = len(targets)
    step.diag = tuple(complex(v) for v in diag)
    step.diag_idx = tuple(
        _axis_index(
            n_qubits, {q: (local >> bit) & 1 for bit, q in enumerate(targets)}
        )
        for local in range(1 << k)
    )
    # Mostly-non-unit diagonals (RZ, batched products) apply fastest as one
    # broadcast multiply over the whole state; mostly-unit ones (CPHASE, CZ,
    # S, T) keep the strided path that skips untouched subspaces.  Parametric
    # steps rebind ``diag`` in place, so they always stay on the strided
    # path, which reads ``diag`` at execution time.
    step.diag_nd = None
    if parametric is None and sum(1 for v in step.diag if v != 1.0) > (1 << k) // 2:
        step.diag_nd = _diag_broadcast(step.diag, step.targets, n_qubits)
    step.parametric = parametric
    return step


def _diag_broadcast(
    diag: Sequence[complex], targets: tuple[int, ...], n_qubits: int
) -> np.ndarray:
    """``diag`` as a broadcastable ``(2|1,)*n`` tensor (qubit q at axis n-1-q)."""
    shape = [1] * n_qubits
    for q in targets:
        shape[n_qubits - 1 - q] = 2
    out = np.empty(shape, dtype=complex)
    for local, value in enumerate(diag):
        idx = [0] * n_qubits
        for bit, q in enumerate(targets):
            idx[n_qubits - 1 - q] = (local >> bit) & 1
        out[tuple(idx)] = value
    return out


def _controlled_step(name, control, target, payload, n_qubits, parametric=None) -> PlanStep:
    step = PlanStep(KERNEL_CONTROLLED, name, (control, target))
    control_axis = n_qubits - 1 - control
    target_axis = n_qubits - 1 - target
    step.ctrl_index = _axis_index(n_qubits, {control: 1})
    step.sub_target_axis = target_axis if target_axis < control_axis else target_axis - 1
    step.m00 = complex(payload[0, 0])
    step.m01 = complex(payload[0, 1])
    step.m10 = complex(payload[1, 0])
    step.m11 = complex(payload[1, 1])
    step.parametric = parametric
    return step


def _exchange_step(name, targets, pairs, n_qubits) -> PlanStep:
    step = PlanStep(KERNEL_PERMUTATION, name, tuple(targets))
    step.pairs = tuple(pairs)
    return step


def _target_geometry(
    targets: tuple[int, ...], n_qubits: int, cache: dict
) -> tuple[np.ndarray, np.ndarray]:
    """(perm, inv_perm) index arrays moving the target bits to the front.

    ``gathered = state[perm]`` orders amplitudes as ``(local, rest)`` with
    the gate's local index contiguous in the leading axis;
    ``state = permuted[inv_perm]`` undoes it.  Shared across plan steps
    acting on the same target tuple.
    """
    cached = cache.get(targets)
    if cached is not None:
        return cached
    size = 1 << n_qubits
    idx = np.arange(size)
    local = np.zeros(size, dtype=np.intp)
    for bit, q in enumerate(targets):
        local |= ((idx >> q) & 1) << bit
    rest = np.zeros(size, dtype=np.intp)
    bit = 0
    target_set = set(targets)
    for q in range(n_qubits):
        if q in target_set:
            continue
        rest |= ((idx >> q) & 1) << bit
        bit += 1
    rest_dim = 1 << (n_qubits - len(targets))
    pos = local * rest_dim + rest
    perm = np.empty(size, dtype=np.intp)
    perm[pos] = idx
    cache[targets] = (perm, pos)
    return perm, pos


def _dense_step(name, targets, matrix, n_qubits, perm_cache, parametric=None) -> PlanStep:
    targets = tuple(targets)
    step = PlanStep(KERNEL_DENSE, name, targets)
    step.matrix = np.ascontiguousarray(matrix, dtype=complex)
    step.perm, step.inv_perm = _target_geometry(targets, n_qubits, perm_cache)
    step.dim_k = 1 << len(targets)
    step.parametric = parametric
    return step


def _gather_step(name, targets, local_perm, n_qubits) -> PlanStep:
    """Whole-state gather realising ``|x> -> |perm[x]>`` on ``targets``."""
    step = PlanStep(KERNEL_GATHER, name, tuple(targets))
    size = 1 << n_qubits
    idx = np.arange(size)
    local = np.zeros(size, dtype=np.intp)
    mask = 0
    for bit, q in enumerate(targets):
        local |= ((idx >> q) & 1) << bit
        mask |= 1 << q
    inv_local = np.empty(1 << len(targets), dtype=np.intp)
    inv_local[np.asarray(local_perm, dtype=np.intp)] = np.arange(1 << len(targets))
    source_local = inv_local[local]
    src = idx & ~mask
    for bit, q in enumerate(targets):
        src |= ((source_local >> bit) & 1) << q
    step.gather = np.ascontiguousarray(src, dtype=np.intp)
    return step


def _permutation_from_matrix(matrix: np.ndarray) -> tuple[int, ...] | None:
    """Extract an exact 0/1 permutation from a unitary matrix, else None."""
    real = matrix.real
    if np.any(matrix.imag != 0.0):
        return None
    if not np.all((real == 0.0) | (real == 1.0)):
        return None
    if not np.all(real.sum(axis=0) == 1.0) or not np.all(real.sum(axis=1) == 1.0):
        return None
    # matrix[dst, src] == 1  =>  |src> -> |dst>
    return tuple(int(d) for d in np.argmax(real, axis=0))


def _materialize_block(block: _FusedBlock, n_qubits: int, perm_cache: dict) -> PlanStep:
    if len(block.targets) == 1:
        return _single_step("FUSED", block.targets[0], block.matrix, n_qubits)
    return _dense_step("FUSED", block.targets, block.matrix, n_qubits, perm_cache)


#: Parametric gates with direct trig rebind paths (see PlanStep.rebind).
_FAST_REBIND = frozenset({"RX", "RY", "RZ", "U3", "CPHASE", "CRZ"})


def _classify_parametric(inst: Instruction, n_qubits: int, perm_cache: dict) -> PlanStep:
    name = inst.name
    qubits = inst.qubits
    if name in ("RZ", "CPHASE", "CRZ"):
        placeholder = (1.0,) * (1 << len(qubits))
        step = _diagonal_step(name, qubits, placeholder, n_qubits, parametric=inst)
    elif len(qubits) == 1:
        step = _single_step(name, qubits[0], np.eye(2), n_qubits, parametric=inst)
    elif len(qubits) == 2 and name in _CONTROLLED_GATES:
        step = _controlled_step(name, qubits[0], qubits[1], np.eye(2), n_qubits, parametric=inst)
    else:
        step = _dense_step(
            name, qubits, np.eye(1 << len(qubits)), n_qubits, perm_cache, parametric=inst
        )
    if name in _FAST_REBIND:
        step.rebind_fast = name
    return step


def _classify(inst: Instruction, n_qubits: int, perm_cache: dict) -> PlanStep | None:
    name = inst.name
    qubits = inst.qubits
    if name in ("MEASURE", "BARRIER", "I"):
        return None
    if name == "RESET":
        step = PlanStep(KERNEL_RESET, name, qubits)
        step.block = 1 << qubits[0]
        step.pairs = (
            (
                _axis_index(n_qubits, {qubits[0]: 0}),
                _axis_index(n_qubits, {qubits[0]: 1}),
            ),
        )
        return step
    if inst.is_parameterized:
        return _classify_parametric(inst, n_qubits, perm_cache)
    if name == "X":
        return _exchange_step(
            name,
            qubits,
            [
                (
                    _axis_index(n_qubits, {qubits[0]: 0}),
                    _axis_index(n_qubits, {qubits[0]: 1}),
                )
            ],
            n_qubits,
        )
    if name == "CX":
        control, target = qubits
        return _exchange_step(
            name,
            qubits,
            [
                (
                    _axis_index(n_qubits, {control: 1, target: 0}),
                    _axis_index(n_qubits, {control: 1, target: 1}),
                )
            ],
            n_qubits,
        )
    if name == "SWAP":
        a, b = qubits
        return _exchange_step(
            name,
            qubits,
            [
                (
                    _axis_index(n_qubits, {a: 0, b: 1}),
                    _axis_index(n_qubits, {a: 1, b: 0}),
                )
            ],
            n_qubits,
        )
    if name == "CCX":
        c0, c1, target = qubits
        return _exchange_step(
            name,
            qubits,
            [
                (
                    _axis_index(n_qubits, {c0: 1, c1: 1, target: 0}),
                    _axis_index(n_qubits, {c0: 1, c1: 1, target: 1}),
                )
            ],
            n_qubits,
        )
    if name == "CSWAP":
        control, a, b = qubits
        return _exchange_step(
            name,
            qubits,
            [
                (
                    _axis_index(n_qubits, {control: 1, a: 0, b: 1}),
                    _axis_index(n_qubits, {control: 1, a: 1, b: 0}),
                )
            ],
            n_qubits,
        )
    if name in _DIAGONAL_GATES:
        return _diagonal_step(name, qubits, np.diag(inst.matrix()), n_qubits)
    if isinstance(inst, PermutationGate):
        return _gather_step(name, qubits, inst.permutation, n_qubits)
    if len(qubits) == 1:
        return _single_step(name, qubits[0], inst.matrix(), n_qubits)
    if len(qubits) == 2 and name in _CONTROLLED_GATES:
        payload = inst.matrix()[np.ix_([1, 3], [1, 3])]
        return _controlled_step(name, qubits[0], qubits[1], payload, n_qubits)
    matrix = inst.matrix()
    if isinstance(inst, UnitaryGate):
        local_perm = _permutation_from_matrix(matrix)
        if local_perm is not None:
            return _gather_step(name, qubits, local_perm, n_qubits)
    return _dense_step(name, qubits, matrix, n_qubits, perm_cache)
