"""Density-matrix simulation for noisy circuits.

The density-matrix path is used by :class:`repro.runtime.noisy_accelerator.
NoisyAccelerator` when a :class:`~repro.simulator.noise.NoiseModel` is
attached.  It is quadratically more expensive than state-vector simulation,
so it is guarded to small qubit counts; the paper's kernels (Bell, small
Shor instances) fit comfortably.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import ExecutionError
from ..ir.composite import CompositeInstruction
from ..ir.instruction import Instruction
from .sampling import sample_counts

__all__ = ["DensityMatrix"]

_MAX_QUBITS = 13


class DensityMatrix:
    """Mixed-state simulation of up to 13 qubits.

    ``dtype`` selects the evolution precision: ``complex128`` (default) or
    ``complex64`` for the halved-footprint single-precision tier.  Kraus
    sums accumulate error linearly in circuit depth, so the single tier's
    documented bound (diagonal-probability error ≤ 1e-4 for the guarded
    qubit counts and depths) is looser than the statevector lane's.
    """

    def __init__(
        self,
        n_qubits: int,
        data: np.ndarray | None = None,
        dtype: np.dtype | type = np.complex128,
    ):
        if n_qubits < 1:
            raise ExecutionError(f"n_qubits must be at least 1, got {n_qubits}")
        if n_qubits > _MAX_QUBITS:
            raise ExecutionError(
                f"density-matrix simulation is limited to {_MAX_QUBITS} qubits, "
                f"got {n_qubits}"
            )
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.complex128), np.dtype(np.complex64)):
            raise ExecutionError(
                f"density-matrix dtype must be complex128 or complex64, got {dtype}"
            )
        self._dtype = dtype
        self.n_qubits = int(n_qubits)
        dim = 1 << self.n_qubits
        if data is None:
            self._rho = np.zeros((dim, dim), dtype=dtype)
            self._rho[0, 0] = 1.0
        else:
            rho = np.asarray(data, dtype=dtype)
            if rho.shape != (dim, dim):
                raise ExecutionError(
                    f"density matrix shape {rho.shape} does not match {n_qubits} qubit(s)"
                )
            atol = 1e-8 if self._dtype == np.dtype(np.complex128) else 1e-5
            if not np.isclose(np.trace(rho).real, 1.0, atol=atol):
                raise ExecutionError("density matrix must have unit trace")
            if not np.allclose(rho, rho.conj().T, atol=atol):
                raise ExecutionError("density matrix must be Hermitian")
            self._rho = rho.copy()

    # -- accessors --------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._rho

    @property
    def dtype(self) -> np.dtype:
        """Evolution dtype (``complex128`` or the ``complex64`` tier)."""
        return self._dtype

    @property
    def dim(self) -> int:
        return self._rho.shape[0]

    def copy(self) -> "DensityMatrix":
        clone = DensityMatrix.__new__(DensityMatrix)
        clone.n_qubits = self.n_qubits
        clone._dtype = self._dtype
        clone._rho = self._rho.copy()
        return clone

    def trace(self) -> float:
        return float(np.trace(self._rho).real)

    def purity(self) -> float:
        """``Tr(rho^2)`` — 1 for pure states, 1/d for the maximally mixed state."""
        return float(np.trace(self._rho @ self._rho).real)

    def probabilities(self) -> np.ndarray:
        return np.clip(np.real(np.diag(self._rho)), 0.0, None)

    @staticmethod
    def from_statevector(state) -> "DensityMatrix":
        """Build ``|psi><psi|`` from a :class:`~repro.simulator.statevector.StateVector`."""
        psi = np.asarray(state.data, dtype=complex).reshape(-1, 1)
        return DensityMatrix(state.n_qubits, psi @ psi.conj().T)

    # -- evolution ---------------------------------------------------------------
    def _embed(self, matrix: np.ndarray, targets: Sequence[int]) -> np.ndarray:
        """Expand a local gate matrix to the full Hilbert space."""
        from .unitary import embed_operator

        return embed_operator(matrix, targets, self.n_qubits)

    def apply(self, instruction: Instruction) -> "DensityMatrix":
        """Apply a unitary instruction: ``rho -> U rho U†``."""
        name = instruction.name
        if name in ("BARRIER", "MEASURE"):
            return self
        if name == "RESET":
            raise ExecutionError("RESET is not supported by the density-matrix simulator")
        full = self._embed(instruction.matrix(), instruction.qubits)
        full = full.astype(self._dtype, copy=False)
        self._rho = full @ self._rho @ full.conj().T
        return self

    def apply_circuit(
        self,
        circuit: CompositeInstruction,
        parameter_values: Mapping[str, float] | Sequence[float] | None = None,
        noise_model=None,
    ) -> "DensityMatrix":
        """Apply a circuit, interleaving noise channels when a model is given."""
        if circuit.n_qubits > self.n_qubits:
            raise ExecutionError(
                f"circuit uses {circuit.n_qubits} qubit(s) but the state has "
                f"only {self.n_qubits}"
            )
        if circuit.is_parameterized:
            if parameter_values is None:
                raise ExecutionError("circuit has unbound parameters")
            circuit = circuit.bind(parameter_values)
        for instruction in circuit:
            self.apply(instruction)
            if noise_model is not None and instruction.is_unitary:
                for bound in noise_model.channels_for(instruction):
                    self.apply_channel(bound, bound.qubits)
        return self

    def apply_channel(self, channel, targets: Sequence[int]) -> "DensityMatrix":
        """Apply a Kraus channel over ``targets``: ``rho -> sum_k K rho K†``."""
        kraus = channel.kraus_operators if hasattr(channel, "kraus_operators") else channel
        targets = tuple(targets)
        new_rho = np.zeros_like(self._rho)
        for op in kraus:
            op = np.asarray(op, dtype=complex)
            expected_dim = 2 ** len(targets)
            if op.shape == (expected_dim, expected_dim):
                full = self._embed(op, targets)
            elif op.shape == (2, 2) and len(targets) >= 1:
                # Single-qubit channel broadcast over each target qubit would
                # be ambiguous; require exactly one target.
                if len(targets) != 1:
                    raise ExecutionError(
                        "single-qubit Kraus operators require exactly one target qubit"
                    )
                full = self._embed(op, targets)
            else:
                raise ExecutionError(
                    f"Kraus operator shape {op.shape} does not match targets {targets}"
                )
            full = full.astype(self._dtype, copy=False)
            new_rho += full @ self._rho @ full.conj().T
        self._rho = new_rho
        return self

    # -- measurement ----------------------------------------------------------------
    def sample(
        self,
        shots: int,
        measured_qubits: Iterable[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> dict[str, int]:
        qubits = tuple(measured_qubits) if measured_qubits is not None else tuple(
            range(self.n_qubits)
        )
        return sample_counts(self.probabilities(), shots, qubits, self.n_qubits, rng)

    def expectation(self, observable) -> float:
        """Exact expectation value of a Pauli operator."""
        from ..operators.pauli import PauliOperator, PauliTerm

        if isinstance(observable, PauliTerm):
            observable = PauliOperator([observable])
        matrix = observable.to_matrix(self.n_qubits)
        return float(np.trace(matrix @ self._rho).real)

    def __repr__(self) -> str:
        return f"DensityMatrix(n_qubits={self.n_qubits})"
