"""Analytic simulation cost model.

The paper's evaluation runs on hardware we do not have (a Ryzen 9 3900X with
the OpenMP-parallel Quantum++ backend).  To regenerate Figures 3-5 with the
right *shape* on any host, the ``modeled`` execution mode estimates the work
of simulating a kernel and hands it to the discrete-event scheduler in
:mod:`repro.parallel.scheduler`, which combines it with the machine topology
and the parallel-efficiency/contention model.

The cost unit is an abstract "amplitude update": applying a k-qubit gate to
an n-qubit dense state touches ``2**n`` amplitudes and costs roughly
``2**k`` multiply-adds per amplitude, plus a per-gate dispatch overhead.
Sampling ``s`` shots costs ``s * n`` units plus one pass over the state for
the probability vector.  These constants do not need to match Quantum++'s
absolute speed — only the *relative* costs matter for reproducing speed-up
ratios — but they are chosen so that Bell (tiny state, sampling-dominated)
and Shor (larger state, gate-dominated) land in the qualitatively different
regimes the paper reports.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Mapping

from ..ir.composite import CompositeInstruction

__all__ = [
    "CircuitCost",
    "SimulationCostModel",
    "DEFAULT_KERNEL_COST_FACTORS",
    "DEFAULT_KERNEL_PARALLEL_EFFICIENCY",
    "DEFAULT_KERNEL_PROCESS_EFFICIENCY",
    "DEFAULT_SECONDS_PER_CLIFFORD_GATE",
    "EXECUTION_LANES",
    "SIMULATION_METHODS",
    "calibration_refinement_count",
]

#: Process-wide count of online lane-timing refinements folded into any
#: cost model via :meth:`SimulationCostModel.observe_lane`.  The broker
#: surfaces it in ``service.metrics()`` as ``calibration_refinements`` so
#: operators can see whether lane selection is still trusting the one-shot
#: calibration profile or has started learning from served jobs.
_refinement_lock = threading.Lock()
_refinement_count = 0


def calibration_refinement_count() -> int:
    """Total ``observe_lane`` refinements applied in this process."""
    with _refinement_lock:
        return _refinement_count


def _reset_refinement_count() -> None:
    """Testing hook: zero the process-wide refinement counter."""
    global _refinement_count
    with _refinement_lock:
        _refinement_count = 0

#: The execution lanes adaptive selection ranks.  ``serial`` is in-process
#: single-threaded replay; ``threads`` is chunk-parallel replay on the
#: engine's thread pool; ``shm`` is the shared-memory process lane;
#: ``sharded`` is the process-sharded executor (wins only for trajectory
#: fan-out, where shots split across workers).
EXECUTION_LANES = ("serial", "threads", "shm", "sharded")

#: Simulation *methods* :meth:`SimulationCostModel.choose_backend` ranks.
#: ``statevector`` is the dense amplitude simulator (every lane above is a
#: way of replaying it); ``stabilizer`` is the CHP-style tableau, polynomial
#: in qubit count but restricted to Clifford circuits.  ``auto`` lets the
#: classifier decide.
SIMULATION_METHODS = ("auto", "statevector", "stabilizer")

#: Fallback per-gate tableau cost (seconds per Clifford gate per qubit-row,
#: i.e. the constant in ``gates * 2n * n / 8`` byte-ops) when the host has
#: no calibrated ``seconds_per_clifford_gate``.  Only the *ratio* against
#: the dense model matters for routing, and the tableau wins by orders of
#: magnitude for every circuit past ~20 qubits, so a loose constant is fine.
DEFAULT_SECONDS_PER_CLIFFORD_GATE = 2e-6

#: Relative per-amplitude work of each compiled-plan kernel class, with a
#: dense single-qubit update as 1.0.  Diagonal kernels touch each amplitude
#: with one multiply (no gather, half the writes); permutation kernels only
#: move amplitudes; gathers pay one indexed copy; controlled kernels update
#: half the state; dense blocks pay the single-qubit cost scaled by
#: ``multi_qubit_factor`` per extra target (handled in :meth:`plan_cost`);
#: resets are a probability reduction plus a conditional slice swap.
DEFAULT_KERNEL_COST_FACTORS: dict[str, float] = {
    "single": 1.0,
    "controlled": 0.6,
    "diagonal": 0.25,
    "permutation": 0.15,
    "gather": 0.35,
    "dense": 1.0,
    "reset": 0.5,
}

#: Fraction of each kernel class's amplitude sweep that chunk-parallel plan
#: replay actually overlaps across worker threads (states at or above the
#: chunk threshold).  Elementwise kernels chunk almost perfectly; gathers
#: and dense blocks pay barrier/scatter phases; resets stay serial (global
#: probability reduction + one RNG draw).
DEFAULT_KERNEL_PARALLEL_EFFICIENCY: dict[str, float] = {
    "single": 0.92,
    "controlled": 0.88,
    "diagonal": 0.85,
    "permutation": 0.8,
    "gather": 0.75,
    "dense": 0.7,
    "reset": 0.0,
}

#: Fraction of each kernel class's sweep that *shared-memory process*
#: replay overlaps across worker processes.  Slightly below the thread
#: efficiencies: the sweeps themselves are identical, but every worker
#: touches the shared mapping cold (no cache reuse between steps that
#: threads get for free) and dense blocks leave their matmul on one
#: worker.  The per-step barrier/IPC cost is modelled separately
#: (:attr:`SimulationCostModel.shm_step_barrier_cost`) because it is a
#: fixed synchronisation price, not a fraction of the sweep.
DEFAULT_KERNEL_PROCESS_EFFICIENCY: dict[str, float] = {
    "single": 0.9,
    "controlled": 0.85,
    "diagonal": 0.82,
    "permutation": 0.76,
    "gather": 0.7,
    "dense": 0.6,
    "reset": 0.0,
}


@dataclass(frozen=True)
class CircuitCost:
    """Work decomposition of one kernel execution.

    ``parallel_work`` scales with the number of simulator threads (the
    OpenMP-parallel portion in Quantum++); ``serial_work`` does not (gate
    dispatch, shot post-processing, buffer bookkeeping); ``locked_work`` is
    serial work performed inside the runtime's global critical sections
    (``qalloc``, service-registry lookups, buffer-map updates — the mutexes
    the paper adds), which additionally serialises *across* concurrently
    running kernels.  Units are abstract work units consumed by
    :class:`repro.parallel.scheduler.TaskScheduler`.
    """

    parallel_work: float
    serial_work: float
    locked_work: float = 0.0

    @property
    def total_work(self) -> float:
        return self.parallel_work + self.serial_work + self.locked_work

    def scaled(self, factor: float) -> "CircuitCost":
        return CircuitCost(
            self.parallel_work * factor,
            self.serial_work * factor,
            self.locked_work * factor,
        )


@dataclass
class SimulationCostModel:
    """Estimates :class:`CircuitCost` for a circuit + shot count.

    Parameters are per-amplitude / per-gate / per-shot constants.  The
    defaults are calibrated (see ``tests/test_benchmark_figures.py``) so that
    the modeled Figures 3-5 reproduce the paper's qualitative results:
    ~no benefit from 12 -> 24 threads for a single kernel, and parallel
    two-kernel execution beating one-by-one execution.
    """

    #: Cost of updating one amplitude with a single-qubit gate.
    amplitude_update_cost: float = 1.0
    #: Additional per-amplitude factor for each extra qubit a gate touches.
    multi_qubit_factor: float = 2.0
    #: Fixed dispatch overhead per gate (serial; OpenMP fork/join, IR walk).
    gate_dispatch_cost: float = 90.0
    #: Fraction of each gate's amplitude-sweep work that does not
    #: parallelise (reduction, scheduling, cache-line ping-pong); this is
    #: what keeps a single kernel from saturating the machine even with a
    #: full 12-thread team, leaving headroom a second concurrent kernel can
    #: exploit (the core effect behind Figures 3-5).
    gate_serial_fraction: float = 0.04
    #: Serial cost per measurement shot (classical post-processing).
    shot_cost: float = 0.1
    #: Parallelisable cost per shot (sampling draw work).
    shot_parallel_cost: float = 6.0
    #: Per-shot cost spent inside global critical sections (result recording
    #: into the shared buffer map).
    shot_locked_cost: float = 0.08
    #: Fixed cost per kernel launch spent inside global critical sections
    #: (qalloc, service-registry lookup, buffer registration).
    launch_overhead: float = 150.0
    #: Per-step dispatch overhead when replaying a *compiled plan* (serial).
    #: Much smaller than ``gate_dispatch_cost``: replay skips the IR walk,
    #: target validation and per-gate matrix construction.
    plan_step_dispatch_cost: float = 25.0
    #: Relative per-amplitude work of each plan kernel class (see
    #: :data:`DEFAULT_KERNEL_COST_FACTORS`).
    kernel_cost_factors: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KERNEL_COST_FACTORS)
    )
    #: Minimum state size (amplitudes) before chunk-parallel replay engages
    #: (mirrors :data:`repro.simulator.execution_plan.DEFAULT_CHUNK_THRESHOLD`).
    chunk_threshold: int = 1 << 16
    #: Per-kernel-class fraction of the sweep that chunking parallelises
    #: (see :data:`DEFAULT_KERNEL_PARALLEL_EFFICIENCY`).
    kernel_parallel_efficiency: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KERNEL_PARALLEL_EFFICIENCY)
    )
    #: Per-kernel-class fraction the shared-memory *process* lane overlaps
    #: (see :data:`DEFAULT_KERNEL_PROCESS_EFFICIENCY`).
    kernel_process_efficiency: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KERNEL_PROCESS_EFFICIENCY)
    )
    #: Serial cost of one inter-process step barrier (semaphore round +
    #: worker wake-up) in shared-memory replay.  Dense steps pay three
    #: (gather / matmul / scatter each barrier); every other chunked step
    #: pays one.  This is the term that makes shallow plans on small
    #: states *lose* from process parallelism in the model, exactly as
    #: they do on hardware.
    shm_step_barrier_cost: float = 60.0
    #: Fixed serial cost of handing a job to a sharded worker process
    #: (pickle + queue round-trip).  Only the sharded lane pays it, which
    #: is what keeps single-state jobs off that lane in adaptive selection
    #: unless trajectory fan-out amortises it.
    sharded_dispatch_cost: float = 500.0
    #: Online refinement state: EWMA of measured seconds per predicted work
    #: unit, per lane, fed by :meth:`observe_lane` from served jobs.  Empty
    #: until the first observation, in which case lane ranking trusts the
    #: (calibrated) static constants exactly as before.  Not persisted —
    #: this is the in-service correction on top of the one-shot profile.
    lane_seconds_per_unit: dict[str, float] = field(default_factory=dict)
    #: EWMA smoothing factor for :meth:`observe_lane` (weight of the newest
    #: observation).  0.25 converges in a handful of jobs while riding out
    #: one noisy measurement.
    refinement_alpha: float = 0.25
    #: Measured seconds per Clifford gate on a 2n×n tableau row-pair
    #: (``None`` until a calibration run fills it in; see
    #: ``repro.calibrate.harness``).  Only used by :meth:`stabilizer_cost`
    #: for reporting — routing in :meth:`choose_backend` is *categorical*
    #: (Clifford ⇒ tableau), because the polynomial/exponential gap is not a
    #: constant-factor question.
    seconds_per_clifford_gate: float | None = None

    @classmethod
    def from_profile(cls, profile) -> "SimulationCostModel":
        """Build a model from a measured :class:`~repro.calibrate.CalibrationProfile`.

        Any constant the profile does not carry (``None`` or missing) keeps
        its hand-set default, and the per-kernel tables are merged over the
        defaults so a partial calibration (e.g. the shm lane unavailable on
        a 1-core host) still yields a complete model.  Accepts anything with
        the profile's attribute shape, so tests can pass a stub.
        """
        kwargs: dict = {}
        for name in (
            "amplitude_update_cost",
            "plan_step_dispatch_cost",
            "shm_step_barrier_cost",
            "sharded_dispatch_cost",
            "chunk_threshold",
        ):
            value = getattr(profile, name, None)
            if value is not None:
                kwargs[name] = type(cls.__dataclass_fields__[name].default)(value)
        # ``None``-default fields cannot use the type-of-default coercion above.
        clifford_seconds = getattr(profile, "seconds_per_clifford_gate", None)
        if clifford_seconds is not None:
            kwargs["seconds_per_clifford_gate"] = float(clifford_seconds)
        for name, defaults in (
            ("kernel_cost_factors", DEFAULT_KERNEL_COST_FACTORS),
            ("kernel_parallel_efficiency", DEFAULT_KERNEL_PARALLEL_EFFICIENCY),
            ("kernel_process_efficiency", DEFAULT_KERNEL_PROCESS_EFFICIENCY),
        ):
            table = getattr(profile, name, None)
            if table:
                merged = dict(defaults)
                merged.update({str(k): float(v) for k, v in dict(table).items()})
                kwargs[name] = merged
        return cls(**kwargs)

    def gate_cost(self, n_qubits: int, gate_qubits: int) -> float:
        """Parallelisable work of one gate application on an ``n_qubits`` state."""
        amplitudes = float(1 << n_qubits)
        width_factor = self.multi_qubit_factor ** max(0, gate_qubits - 1)
        return amplitudes * self.amplitude_update_cost * width_factor

    def circuit_cost(self, circuit: CompositeInstruction, shots: int) -> CircuitCost:
        """Estimate the cost of executing ``circuit`` with ``shots`` shots."""
        n = max(circuit.n_qubits, 1)
        parallel = 0.0
        serial = 0.0
        locked = self.launch_overhead
        for instruction in circuit:
            if not instruction.is_unitary:
                continue
            gate_work = self.gate_cost(n, max(1, len(instruction.qubits)))
            parallel += gate_work * (1.0 - self.gate_serial_fraction)
            serial += gate_work * self.gate_serial_fraction
            serial += self.gate_dispatch_cost
        # Probability-vector pass + multinomial sampling.
        parallel += float(1 << n) * self.amplitude_update_cost
        parallel += shots * self.shot_parallel_cost
        serial += shots * self.shot_cost
        locked += shots * self.shot_locked_cost
        return CircuitCost(parallel_work=parallel, serial_work=serial, locked_work=locked)

    # -- compiled-plan costing ------------------------------------------------------
    def kernel_cost(self, n_qubits: int, kernel: str, targets: int = 1) -> float:
        """Per-step amplitude-sweep work of one plan kernel invocation.

        ``kernel`` is a class name from
        :data:`repro.simulator.execution_plan.KERNEL_NAMES`; unknown names
        cost like a dense update (conservative).  Dense blocks additionally
        scale by ``multi_qubit_factor`` per extra target, mirroring
        :meth:`gate_cost`.
        """
        amplitudes = float(1 << n_qubits)
        factor = float(self.kernel_cost_factors.get(kernel, 1.0))
        if kernel == "dense":
            factor *= self.multi_qubit_factor ** max(0, targets - 1)
        return amplitudes * self.amplitude_update_cost * factor

    def plan_cost(
        self, plan, shots: int, *, chunked: bool = False, processes: int = 0
    ) -> CircuitCost:
        """Estimate the cost of replaying a compiled :class:`ExecutionPlan`.

        The ``modeled`` execution mode uses this to predict *plan-executed*
        latency: kernel classes are costed individually (a QFT's diagonal
        ladder is far cheaper than the dense-gate sweep
        :meth:`circuit_cost` assumes), fusion shows up as fewer steps, and
        the per-step dispatch overhead reflects plan replay rather than the
        per-gate IR walk.  Accepts parametric plans (the kernel sequence is
        the template's; rebinding cost is a handful of 2x2 rebuilds and is
        folded into the step dispatch constant).

        ``chunked=True`` models *chunk-parallel* replay instead of the
        OpenMP-style sweep model: below :attr:`chunk_threshold` the replay
        is single-threaded (all sweep work is serial — exactly what the
        real engine does), and above it each kernel class parallelises only
        its :attr:`kernel_parallel_efficiency` fraction.

        ``processes=N`` (N > 1) models the shared-memory *process* lane
        instead: above the threshold each kernel class overlaps its
        :attr:`kernel_process_efficiency` fraction across the worker
        processes and every chunked step additionally pays
        :attr:`shm_step_barrier_cost` per barrier (three for dense steps:
        gather / matmul / scatter), the IPC price the thread lane does not
        have; below the threshold the lane never engages, so the sweep is
        serial with no barrier cost — matching
        :class:`~repro.exec.shm.SharedStatePool` exactly.
        """
        steps = getattr(plan, "steps", None)
        if steps is None:  # ParametricExecutionPlan delegates to its template
            steps = plan.template_steps
        n = max(int(plan.n_qubits), 1)
        process_mode = processes > 1
        chunking_engages = (chunked or process_mode) and (
            1 << n
        ) >= self.chunk_threshold
        parallel = 0.0
        serial = 0.0
        locked = self.launch_overhead
        for step in steps:
            work = self.kernel_cost(n, step.kernel, len(step.targets))
            if process_mode:
                if chunking_engages:
                    parallel_fraction = float(
                        self.kernel_process_efficiency.get(step.kernel, 0.6)
                    )
                    barriers = 3 if step.kernel == "dense" else 1
                    serial += self.shm_step_barrier_cost * barriers
                else:
                    parallel_fraction = 0.0
            elif not chunked:
                parallel_fraction = 1.0 - self.gate_serial_fraction
            elif chunking_engages:
                parallel_fraction = float(
                    self.kernel_parallel_efficiency.get(step.kernel, 0.7)
                )
            else:
                parallel_fraction = 0.0
            parallel += work * parallel_fraction
            serial += work * (1.0 - parallel_fraction)
            serial += self.plan_step_dispatch_cost
        # Probability-vector pass + multinomial sampling (identical to the
        # gate-by-gate path: sampling does not change with plans).
        parallel += float(1 << n) * self.amplitude_update_cost
        parallel += shots * self.shot_parallel_cost
        serial += shots * self.shot_cost
        locked += shots * self.shot_locked_cost
        return CircuitCost(parallel_work=parallel, serial_work=serial, locked_work=locked)

    def sweep_cost(
        self,
        plan,
        n_bindings: int,
        shots: int,
        *,
        chunked: bool = False,
        processes: int = 0,
    ) -> CircuitCost:
        """Estimate a compile-once parameter sweep over ``n_bindings``.

        An independent submission pays :meth:`plan_cost` — including the
        :attr:`launch_overhead` critical-section entry — once *per binding*.
        A sweep pays the launch once for the whole fan-out and then only the
        marginal per-evaluation work: an in-place trig rebind (folded into
        the per-step dispatch constant, same as :meth:`plan_cost`'s
        parametric note) plus the replay + sampling sweep itself.  The
        predicted amortisation ratio is therefore
        ``n * plan_cost(...).total_work / sweep_cost(...).total_work``.
        """
        n = max(1, int(n_bindings))
        single = self.plan_cost(plan, shots, chunked=chunked, processes=processes)
        marginal_locked = max(0.0, single.locked_work - self.launch_overhead)
        return CircuitCost(
            parallel_work=single.parallel_work * n,
            serial_work=single.serial_work * n,
            locked_work=marginal_locked * n + self.launch_overhead,
        )

    # -- online refinement -------------------------------------------------------------
    def observe_lane(
        self, lane: str, predicted_units: float, measured_seconds: float
    ) -> None:
        """Fold one served-job measurement into the per-lane EWMA.

        ``predicted_units`` is this model's wall-clock estimate for the
        replay that was routed to ``lane`` (from :meth:`lane_costs`);
        ``measured_seconds`` is what the replay actually took.  The ratio
        seconds-per-unit is smoothed per lane and applied as a multiplicative
        correction in :meth:`lane_costs`, so lane selection improves in
        service instead of trusting one-shot micro-benchmarks forever.
        Non-positive or non-finite inputs are ignored (a cancelled or
        clock-skewed job must not poison the estimate).
        """
        global _refinement_count
        if lane not in EXECUTION_LANES:
            return
        if not (
            math.isfinite(predicted_units)
            and math.isfinite(measured_seconds)
            and predicted_units > 0.0
            and measured_seconds > 0.0
        ):
            return
        ratio = measured_seconds / predicted_units
        with _refinement_lock:
            previous = self.lane_seconds_per_unit.get(lane)
            if previous is None:
                self.lane_seconds_per_unit[lane] = ratio
            else:
                alpha = self.refinement_alpha
                self.lane_seconds_per_unit[lane] = previous + alpha * (ratio - previous)
            _refinement_count += 1

    def _lane_scale(self, lane: str) -> float:
        """Multiplicative EWMA correction for ``lane``.

        Lanes without observations borrow the mean of the observed lanes so
        that a uniformly-miscalibrated host (every lane 2x slower than the
        profile predicts) does not bias selection toward whichever lane
        happens to be unobserved; with no observations at all the scale is
        1.0 and ranking reduces to the static model.
        """
        table = self.lane_seconds_per_unit
        if not table:
            return 1.0
        observed = table.get(lane)
        if observed is not None:
            return observed
        return sum(table.values()) / len(table)

    # -- adaptive lane selection -----------------------------------------------------
    def predicted_units(self, cost: CircuitCost, workers: int) -> float:
        """Wall-clock estimate (abstract units) of ``cost`` on ``workers``:
        serial and locked work never overlap, parallel work divides."""
        workers = max(1, int(workers))
        return cost.serial_work + cost.locked_work + cost.parallel_work / workers

    def lane_costs(
        self,
        plan,
        shots: int,
        *,
        threads: int = 1,
        shm_workers: int = 0,
        shards: int = 0,
    ) -> dict[str, float]:
        """Predicted wall-clock units of replaying ``plan`` on each available lane.

        ``serial`` is always present; ``threads``/``shm``/``sharded`` appear
        only when the corresponding worker count makes the lane viable
        (> 1).  The sharded lane only divides work for trajectory plans
        (shots fan out across processes); a single-state replay runs whole
        on one shard and just pays the dispatch overhead on top of serial.
        """
        costs: dict[str, float] = {}
        chunked = self.plan_cost(plan, shots, chunked=True)
        costs["serial"] = chunked.total_work
        if threads > 1:
            costs["threads"] = self.predicted_units(chunked, threads)
        if shm_workers > 1:
            shm = self.plan_cost(plan, shots, processes=shm_workers)
            costs["shm"] = self.predicted_units(shm, shm_workers)
        if shards > 1:
            if getattr(plan, "has_reset", False):
                costs["sharded"] = (
                    self.predicted_units(chunked, shards) + self.sharded_dispatch_cost
                )
            else:
                costs["sharded"] = chunked.total_work + self.sharded_dispatch_cost
        # Apply the online per-lane EWMA correction (1.0 until observe_lane
        # has been fed at least once, so cold models rank exactly as the
        # static constants dictate).
        if self.lane_seconds_per_unit:
            for lane in costs:
                costs[lane] *= self._lane_scale(lane)
        return costs

    def choose_lane(
        self,
        plan,
        shots: int,
        *,
        threads: int = 1,
        shm_workers: int = 0,
        shards: int = 0,
    ) -> str:
        """The predicted-cheapest lane name for ``plan`` (ties prefer the
        earlier entry in :data:`EXECUTION_LANES`, i.e. the simpler lane)."""
        lane, _ = self.choose_lane_with_costs(
            plan, shots, threads=threads, shm_workers=shm_workers, shards=shards
        )
        return lane

    def choose_lane_with_costs(
        self,
        plan,
        shots: int,
        *,
        threads: int = 1,
        shm_workers: int = 0,
        shards: int = 0,
    ) -> tuple[str, dict[str, float]]:
        """Like :meth:`choose_lane`, also returning the full cost table.

        Callers that time the replay they route (``LocalBackend`` with
        ``adaptive=True``) need the chosen lane's predicted units to feed
        :meth:`observe_lane` afterwards without re-costing the plan.
        """
        costs = self.lane_costs(
            plan, shots, threads=threads, shm_workers=shm_workers, shards=shards
        )
        lane = min(costs, key=lambda lane: (costs[lane], EXECUTION_LANES.index(lane)))
        return lane, costs

    # -- circuit-class (method) routing ------------------------------------------------
    def stabilizer_seconds(self, n_qubits: int, n_gates: int, shots: int = 0) -> float:
        """Predicted wall-clock seconds of a tableau execution.

        The tableau costs ``O(n)`` boolean row-ops per gate on ``2n`` rows
        (``n_gates * n`` per-gate work units) plus one ``O(n²)`` affine solve
        per measured qubit at sampling time, folded into a per-shot constant.
        Uses the calibrated :attr:`seconds_per_clifford_gate` when a profile
        supplied one, :data:`DEFAULT_SECONDS_PER_CLIFFORD_GATE` otherwise.
        """
        per_gate = self.seconds_per_clifford_gate
        if per_gate is None:
            per_gate = DEFAULT_SECONDS_PER_CLIFFORD_GATE
        n = max(1, int(n_qubits))
        gate_seconds = per_gate * max(0, int(n_gates)) * n
        sample_seconds = per_gate * max(0, int(shots))
        return gate_seconds + sample_seconds

    def choose_backend(self, classification, method: str = "auto") -> str:
        """Route one job to ``"statevector"`` or ``"stabilizer"``.

        ``classification`` is a
        :class:`~repro.ir.transforms.clifford.CliffordClassification`.
        Under ``method="auto"`` Clifford-only circuits go to the tableau —
        polynomial versus exponential is not a break-even computation, so
        the choice is categorical, not a cost comparison.  An explicit
        ``method="stabilizer"`` on a non-Clifford circuit is a typed error
        (the tableau *cannot* run it); explicit ``"statevector"`` always
        wins (the documented opt-out for callers that need the dense
        sampling law).  Unknown methods are rejected so option typos fail
        loudly instead of silently running dense.
        """
        from ..exceptions import ExecutionError

        normalized = str(method).strip().lower() if method is not None else "auto"
        if normalized not in SIMULATION_METHODS:
            raise ExecutionError(
                f"unknown simulation method {method!r}; "
                f"expected one of {SIMULATION_METHODS}"
            )
        if normalized == "statevector":
            return "statevector"
        is_clifford = bool(getattr(classification, "is_clifford", False))
        if normalized == "stabilizer":
            if not is_clifford:
                reason = getattr(classification, "reason", "") or "not Clifford"
                raise ExecutionError(
                    f"method 'stabilizer' was requested but the circuit is "
                    f"not Clifford: {reason}"
                )
            return "stabilizer"
        return "stabilizer" if is_clifford else "statevector"
