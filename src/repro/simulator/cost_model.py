"""Analytic simulation cost model.

The paper's evaluation runs on hardware we do not have (a Ryzen 9 3900X with
the OpenMP-parallel Quantum++ backend).  To regenerate Figures 3-5 with the
right *shape* on any host, the ``modeled`` execution mode estimates the work
of simulating a kernel and hands it to the discrete-event scheduler in
:mod:`repro.parallel.scheduler`, which combines it with the machine topology
and the parallel-efficiency/contention model.

The cost unit is an abstract "amplitude update": applying a k-qubit gate to
an n-qubit dense state touches ``2**n`` amplitudes and costs roughly
``2**k`` multiply-adds per amplitude, plus a per-gate dispatch overhead.
Sampling ``s`` shots costs ``s * n`` units plus one pass over the state for
the probability vector.  These constants do not need to match Quantum++'s
absolute speed — only the *relative* costs matter for reproducing speed-up
ratios — but they are chosen so that Bell (tiny state, sampling-dominated)
and Shor (larger state, gate-dominated) land in the qualitatively different
regimes the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.composite import CompositeInstruction

__all__ = ["CircuitCost", "SimulationCostModel"]


@dataclass(frozen=True)
class CircuitCost:
    """Work decomposition of one kernel execution.

    ``parallel_work`` scales with the number of simulator threads (the
    OpenMP-parallel portion in Quantum++); ``serial_work`` does not (gate
    dispatch, shot post-processing, buffer bookkeeping); ``locked_work`` is
    serial work performed inside the runtime's global critical sections
    (``qalloc``, service-registry lookups, buffer-map updates — the mutexes
    the paper adds), which additionally serialises *across* concurrently
    running kernels.  Units are abstract work units consumed by
    :class:`repro.parallel.scheduler.TaskScheduler`.
    """

    parallel_work: float
    serial_work: float
    locked_work: float = 0.0

    @property
    def total_work(self) -> float:
        return self.parallel_work + self.serial_work + self.locked_work

    def scaled(self, factor: float) -> "CircuitCost":
        return CircuitCost(
            self.parallel_work * factor,
            self.serial_work * factor,
            self.locked_work * factor,
        )


@dataclass
class SimulationCostModel:
    """Estimates :class:`CircuitCost` for a circuit + shot count.

    Parameters are per-amplitude / per-gate / per-shot constants.  The
    defaults are calibrated (see ``tests/test_benchmark_figures.py``) so that
    the modeled Figures 3-5 reproduce the paper's qualitative results:
    ~no benefit from 12 -> 24 threads for a single kernel, and parallel
    two-kernel execution beating one-by-one execution.
    """

    #: Cost of updating one amplitude with a single-qubit gate.
    amplitude_update_cost: float = 1.0
    #: Additional per-amplitude factor for each extra qubit a gate touches.
    multi_qubit_factor: float = 2.0
    #: Fixed dispatch overhead per gate (serial; OpenMP fork/join, IR walk).
    gate_dispatch_cost: float = 90.0
    #: Fraction of each gate's amplitude-sweep work that does not
    #: parallelise (reduction, scheduling, cache-line ping-pong); this is
    #: what keeps a single kernel from saturating the machine even with a
    #: full 12-thread team, leaving headroom a second concurrent kernel can
    #: exploit (the core effect behind Figures 3-5).
    gate_serial_fraction: float = 0.04
    #: Serial cost per measurement shot (classical post-processing).
    shot_cost: float = 0.1
    #: Parallelisable cost per shot (sampling draw work).
    shot_parallel_cost: float = 6.0
    #: Per-shot cost spent inside global critical sections (result recording
    #: into the shared buffer map).
    shot_locked_cost: float = 0.08
    #: Fixed cost per kernel launch spent inside global critical sections
    #: (qalloc, service-registry lookup, buffer registration).
    launch_overhead: float = 150.0

    def gate_cost(self, n_qubits: int, gate_qubits: int) -> float:
        """Parallelisable work of one gate application on an ``n_qubits`` state."""
        amplitudes = float(1 << n_qubits)
        width_factor = self.multi_qubit_factor ** max(0, gate_qubits - 1)
        return amplitudes * self.amplitude_update_cost * width_factor

    def circuit_cost(self, circuit: CompositeInstruction, shots: int) -> CircuitCost:
        """Estimate the cost of executing ``circuit`` with ``shots`` shots."""
        n = max(circuit.n_qubits, 1)
        parallel = 0.0
        serial = 0.0
        locked = self.launch_overhead
        for instruction in circuit:
            if not instruction.is_unitary:
                continue
            gate_work = self.gate_cost(n, max(1, len(instruction.qubits)))
            parallel += gate_work * (1.0 - self.gate_serial_fraction)
            serial += gate_work * self.gate_serial_fraction
            serial += self.gate_dispatch_cost
        # Probability-vector pass + multinomial sampling.
        parallel += float(1 << n) * self.amplitude_update_cost
        parallel += shots * self.shot_parallel_cost
        serial += shots * self.shot_cost
        locked += shots * self.shot_locked_cost
        return CircuitCost(parallel_work=parallel, serial_work=serial, locked_work=locked)
