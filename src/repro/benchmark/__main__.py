"""Command-line entry point: ``python -m repro.benchmark <figure> [--mode ...]``.

Examples::

    python -m repro.benchmark all                 # modeled mode, all figures
    python -m repro.benchmark fig3 --mode real    # wall-clock on this host
    python -m repro.benchmark fig5 --csv          # machine-readable output
"""

from __future__ import annotations

import argparse
import sys

from .figures import figure3, figure4, figure5
from .reporting import figure_to_csv, format_figure

_FIGURES = {
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmark",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_FIGURES) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--mode",
        choices=["modeled", "real"],
        default="modeled",
        help="modeled: deterministic cost-model simulation of the paper's machine; "
        "real: wall-clock execution on this host",
    )
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    args = parser.parse_args(argv)

    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        series = _FIGURES[name](mode=args.mode)
        output = figure_to_csv(series) if args.csv else format_figure(series)
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
