"""Regeneration of the paper's Figures 3, 4 and 5.

Each ``figureN()`` function runs the corresponding workload through the
:class:`~repro.benchmark.harness.BenchmarkHarness` and returns a
:class:`FigureSeries` pairing the paper's reported speed-ups with the
measured (modeled or real) ones, point by point.  The paper's numbers are
read off its bar charts and kept here as constants so EXPERIMENTS.md and the
test suite can quantify how closely the reproduction tracks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError
from .harness import BenchmarkHarness, VariantResult
from .workloads import Workload, figure3_workload, figure4_workload, figure5_workload

__all__ = [
    "FigureSeries",
    "figure3",
    "figure4",
    "figure5",
    "PAPER_FIGURE3",
    "PAPER_FIGURE4",
    "PAPER_FIGURE5_ONE_BY_ONE",
    "PAPER_FIGURE5_PARALLEL",
]

#: Figure 3 (two Bell kernels): speed-up over one-by-one execution with 12
#: threads, as reported by the paper.
PAPER_FIGURE3: dict[str, float] = {
    "one-by-one 12 threads": 1.00,
    "one-by-one 24 threads": 0.96,
    "parallel 2 x (6 threads/task)": 1.30,
    "parallel 2 x (12 threads/task)": 1.63,
}

#: Figure 4 (SHOR(15, 2) + SHOR(15, 7)): speed-up over 12-thread one-by-one.
PAPER_FIGURE4: dict[str, float] = {
    "one-by-one 12 threads": 1.00,
    "one-by-one 24 threads": 1.02,
    "parallel 2 x (6 threads/task)": 1.20,
    "parallel 2 x (12 threads/task)": 1.22,
}

#: Figure 5 (two SHOR(7, 2) kernels): speed-up over single-threaded
#: one-by-one execution, for the conventional variant ...
PAPER_FIGURE5_ONE_BY_ONE: dict[int, float] = {2: 1.72, 4: 3.06, 6: 4.18, 12: 6.53, 24: 6.53}
#: ... and for the parallel variant (keyed by *total* threads; each of the
#: two tasks uses half of them).
PAPER_FIGURE5_PARALLEL: dict[int, float] = {2: 1.89, 4: 3.27, 6: 4.72, 12: 7.69, 24: 7.82}


@dataclass
class FigurePoint:
    """One bar of a figure: paper-reported vs measured speed-up."""

    label: str
    paper_speedup: float
    measured_speedup: float
    duration: float

    @property
    def relative_error(self) -> float:
        if self.paper_speedup == 0:
            return 0.0
        return abs(self.measured_speedup - self.paper_speedup) / self.paper_speedup


@dataclass
class FigureSeries:
    """A regenerated figure: an ordered list of points plus metadata."""

    figure: str
    workload: str
    baseline_label: str
    mode: str
    points: list[FigurePoint] = field(default_factory=list)

    def measured(self) -> dict[str, float]:
        return {p.label: p.measured_speedup for p in self.points}

    def paper(self) -> dict[str, float]:
        return {p.label: p.paper_speedup for p in self.points}

    def max_relative_error(self) -> float:
        return max((p.relative_error for p in self.points), default=0.0)

    def point(self, label: str) -> FigurePoint:
        for candidate in self.points:
            if candidate.label == label:
                return candidate
        raise ConfigurationError(f"no point labelled {label!r} in {self.figure}")


def _speedup_figure(
    figure_name: str,
    workload: Workload,
    configurations: list[tuple[str, int, float]],
    baseline_index: int,
    harness: BenchmarkHarness,
) -> FigureSeries:
    """Run ``configurations`` (variant, total_threads, paper value) and
    normalise durations against the configuration at ``baseline_index``."""
    results: list[VariantResult] = [
        harness.run_variant(workload, variant, threads)
        for variant, threads, _paper in configurations
    ]
    baseline = results[baseline_index]
    series = FigureSeries(
        figure=figure_name,
        workload=workload.name,
        baseline_label=baseline.label,
        mode=results[0].mode,
    )
    for result, (_variant, _threads, paper_value) in zip(results, configurations):
        series.points.append(
            FigurePoint(
                label=result.label,
                paper_speedup=paper_value,
                measured_speedup=baseline.duration / result.duration,
                duration=result.duration,
            )
        )
    return series


def figure3(mode: str | None = None, harness: BenchmarkHarness | None = None) -> FigureSeries:
    """Figure 3: two Bell kernels, one-by-one vs parallel."""
    harness = harness or BenchmarkHarness(mode=mode)
    if mode is not None:
        harness.mode = mode
    workload = figure3_workload()
    configurations = [
        ("one-by-one", 12, PAPER_FIGURE3["one-by-one 12 threads"]),
        ("one-by-one", 24, PAPER_FIGURE3["one-by-one 24 threads"]),
        ("parallel", 12, PAPER_FIGURE3["parallel 2 x (6 threads/task)"]),
        ("parallel", 24, PAPER_FIGURE3["parallel 2 x (12 threads/task)"]),
    ]
    return _speedup_figure("Figure 3 (Bell kernel)", workload, configurations, 0, harness)


def figure4(mode: str | None = None, harness: BenchmarkHarness | None = None) -> FigureSeries:
    """Figure 4: SHOR(N=15, a=2) and SHOR(N=15, a=7), one-by-one vs parallel."""
    harness = harness or BenchmarkHarness(mode=mode)
    if mode is not None:
        harness.mode = mode
    workload = figure4_workload()
    configurations = [
        ("one-by-one", 12, PAPER_FIGURE4["one-by-one 12 threads"]),
        ("one-by-one", 24, PAPER_FIGURE4["one-by-one 24 threads"]),
        ("parallel", 12, PAPER_FIGURE4["parallel 2 x (6 threads/task)"]),
        ("parallel", 24, PAPER_FIGURE4["parallel 2 x (12 threads/task)"]),
    ]
    return _speedup_figure("Figure 4 (Shor kernel)", workload, configurations, 0, harness)


def figure5(mode: str | None = None, harness: BenchmarkHarness | None = None) -> FigureSeries:
    """Figure 5: strong scalability of two SHOR(N=7, a=2) kernels.

    The baseline is single-threaded one-by-one execution; the series
    contains the one-by-one points (2/4/6/12/24 threads) followed by the
    parallel points (2 x 1/2/3/6/12 threads per task).
    """
    harness = harness or BenchmarkHarness(mode=mode)
    if mode is not None:
        harness.mode = mode
    workload = figure5_workload()
    configurations: list[tuple[str, int, float]] = [("one-by-one", 1, 1.0)]
    for threads, paper_value in PAPER_FIGURE5_ONE_BY_ONE.items():
        configurations.append(("one-by-one", threads, paper_value))
    for threads, paper_value in PAPER_FIGURE5_PARALLEL.items():
        configurations.append(("parallel", threads, paper_value))
    return _speedup_figure(
        "Figure 5 (Shor strong scaling)", workload, configurations, 0, harness
    )
