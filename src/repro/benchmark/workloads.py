"""Workload definitions for the paper's evaluation.

Each workload is a list of :class:`~repro.core.executor.KernelTask` objects
plus enough metadata for the harness to build either real executions or
modeled :class:`~repro.parallel.scheduler.SimTask` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..algorithms.bell import bell_circuit
from ..algorithms.shor import period_finding_circuit
from ..core.executor import KernelTask
from ..ir.composite import CompositeInstruction

__all__ = [
    "Workload",
    "bell_workload",
    "shor_workload",
    "figure3_workload",
    "figure4_workload",
    "figure5_workload",
]


@dataclass
class Workload:
    """A named set of kernel tasks evaluated together."""

    name: str
    tasks: list[KernelTask]

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def circuits(self) -> list[CompositeInstruction]:
        return [task.build_circuit() for task in self.tasks]


def _task(name: str, factory: Callable[[], CompositeInstruction], n_qubits: int, shots: int) -> KernelTask:
    return KernelTask(name=name, circuit_factory=factory, n_qubits=n_qubits, shots=shots)


def bell_workload(n_kernels: int = 2, shots: int = 1024) -> Workload:
    """``n_kernels`` independent 2-qubit Bell kernels (Figure 3's workload)."""
    tasks = [
        _task(f"bell_{i}", lambda: bell_circuit(2), 2, shots) for i in range(n_kernels)
    ]
    return Workload(name=f"{n_kernels}x bell ({shots} shots)", tasks=tasks)


def shor_workload(parameters: Sequence[tuple[int, int]], shots: int = 10) -> Workload:
    """One Shor period-finding kernel per ``(N, a)`` pair."""
    tasks = []
    for N, a in parameters:
        import math

        n = math.ceil(math.log2(N))
        n_qubits = n + 2 * n

        def factory(N=N, a=a) -> CompositeInstruction:
            return period_finding_circuit(N, a)

        tasks.append(_task(f"shor_N{N}_a{a}", factory, n_qubits, shots))
    return Workload(name=f"shor {list(parameters)} ({shots} shots)", tasks=tasks)


def figure3_workload() -> Workload:
    """Figure 3: two Bell kernels, 1024 shots each."""
    return bell_workload(n_kernels=2, shots=1024)


def figure4_workload() -> Workload:
    """Figure 4: SHOR(N=15, a=2) and SHOR(N=15, a=7), 10 shots each."""
    return shor_workload([(15, 2), (15, 7)], shots=10)


def figure5_workload() -> Workload:
    """Figure 5: two SHOR(N=7, a=2) kernels, 10 shots each."""
    workload = shor_workload([(7, 2), (7, 2)], shots=10)
    # Task names must be unique for the scheduler; disambiguate the copies.
    for index, task in enumerate(workload.tasks):
        task.name = f"{task.name}_{index}"
    workload.name = "2x shor N=7 a=2 (10 shots)"
    return workload
