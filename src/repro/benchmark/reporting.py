"""Plain-text reporting of benchmark results."""

from __future__ import annotations

from typing import Iterable, Sequence

from .figures import FigureSeries

__all__ = ["format_table", "format_figure", "figure_to_csv"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table (no external dependencies)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_figure(series: FigureSeries) -> str:
    """Render a regenerated figure as a paper-vs-measured comparison table."""
    rows = []
    for point in series.points:
        rows.append(
            [
                point.label,
                f"{point.paper_speedup:.2f}",
                f"{point.measured_speedup:.2f}",
                f"{100.0 * point.relative_error:.1f}%",
            ]
        )
    header = (
        f"{series.figure} — workload: {series.workload}\n"
        f"baseline: {series.baseline_label} (mode: {series.mode})\n"
    )
    table = format_table(["configuration", "paper speed-up", "measured speed-up", "rel. error"], rows)
    return header + table


def figure_to_csv(series: FigureSeries) -> str:
    """Render a regenerated figure as CSV (one row per configuration)."""
    lines = ["configuration,paper_speedup,measured_speedup,duration"]
    for point in series.points:
        lines.append(
            f"{point.label},{point.paper_speedup:.4f},{point.measured_speedup:.4f},"
            f"{point.duration:.6f}"
        )
    return "\n".join(lines) + "\n"
