"""Benchmark harness reproducing the paper's evaluation (Figures 3-5).

* :mod:`~repro.benchmark.workloads` — the evaluated kernels packaged as
  :class:`~repro.core.executor.KernelTask` lists (two Bell kernels with 1024
  shots, two Shor kernels with 10 shots, ...).
* :mod:`~repro.benchmark.harness` — runs a workload under the *one-by-one*
  and *parallel* variants in either execution mode (``modeled`` uses the
  calibrated cost model + discrete-event scheduler; ``real`` uses wall-clock
  execution on the host).
* :mod:`~repro.benchmark.figures` — regenerates each figure's series,
  printing paper-reported vs measured numbers side by side.
* ``python -m repro.benchmark fig3|fig4|fig5|all`` — command-line entry
  point.
"""

from .workloads import (
    bell_workload,
    shor_workload,
    figure3_workload,
    figure4_workload,
    figure5_workload,
)
from .harness import BenchmarkHarness, VariantResult
from .figures import (
    FigureSeries,
    figure3,
    figure4,
    figure5,
    PAPER_FIGURE3,
    PAPER_FIGURE4,
    PAPER_FIGURE5_ONE_BY_ONE,
    PAPER_FIGURE5_PARALLEL,
)
from .reporting import format_figure, format_table

__all__ = [
    "bell_workload",
    "shor_workload",
    "figure3_workload",
    "figure4_workload",
    "figure5_workload",
    "BenchmarkHarness",
    "VariantResult",
    "FigureSeries",
    "figure3",
    "figure4",
    "figure5",
    "PAPER_FIGURE3",
    "PAPER_FIGURE4",
    "PAPER_FIGURE5_ONE_BY_ONE",
    "PAPER_FIGURE5_PARALLEL",
    "format_figure",
    "format_table",
]
