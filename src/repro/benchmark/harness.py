"""Benchmark harness: run a workload under the paper's two variants.

The harness supports both execution modes:

* ``modeled`` — kernel costs come from the
  :class:`~repro.simulator.cost_model.SimulationCostModel`, thread behaviour
  from the :class:`~repro.parallel.scheduler.TaskScheduler` configured with
  the paper's machine; results are deterministic "simulated seconds".
* ``real`` — kernels are actually executed through
  :func:`repro.core.executor.run_one_by_one` / ``run_parallel`` on the host;
  results are wall-clock seconds.

Either way the harness returns :class:`VariantResult` objects from which the
figures' speed-up ratios are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import get_config
from ..core.executor import run_one_by_one as real_one_by_one
from ..core.executor import run_parallel as real_parallel
from ..exceptions import ConfigurationError
from ..parallel.contention import ContentionModel
from ..parallel.scheduler import SimTask, TaskScheduler
from ..simulator.cost_model import SimulationCostModel
from .workloads import Workload

__all__ = ["VariantResult", "BenchmarkHarness"]


@dataclass
class VariantResult:
    """Timing outcome for one (variant, thread configuration) point."""

    label: str
    variant: str
    total_threads: int
    threads_per_task: int
    #: Simulated or wall-clock duration, depending on the execution mode.
    duration: float
    mode: str
    details: dict = field(default_factory=dict)

    def speedup_over(self, baseline: "VariantResult") -> float:
        if self.duration <= 0:
            raise ConfigurationError("cannot compute a speed-up for a zero duration")
        return baseline.duration / self.duration


@dataclass
class BenchmarkHarness:
    """Runs workloads under the one-by-one and parallel variants."""

    mode: str | None = None
    cost_model: SimulationCostModel = field(default_factory=SimulationCostModel)
    contention: ContentionModel = field(default_factory=ContentionModel)
    backend: str | None = None
    #: Cost modeled kernels from their *compiled plans* (kernel-class-aware
    #: costing via :meth:`SimulationCostModel.plan_cost`) instead of the
    #: historical per-gate estimate.  Opt-in: the calibrated Figures 3-5
    #: constants assume per-gate costing.
    use_plan_costs: bool = False
    #: With ``use_plan_costs``, model *chunk-parallel* replay (the default
    #: real-execution behaviour for states at or above the chunk
    #: threshold) instead of the OpenMP-style sweep model: below the
    #: threshold sweeps are serial, above it each kernel class
    #: parallelises its measured efficiency fraction.
    chunked_plan_costs: bool = False
    #: With ``use_plan_costs``, model the shared-memory *process* lane
    #: (``SharedStatePool`` with this many workers) instead of the thread
    #: lane: per-kernel process efficiencies plus a per-step barrier/IPC
    #: cost above the chunk threshold.  0 = off; overrides
    #: ``chunked_plan_costs`` when set, mirroring the real dispatch
    #: priority in ``LocalBackend``.
    shm_plan_processes: int = 0

    def _resolve_mode(self) -> str:
        mode = self.mode if self.mode is not None else get_config().execution_mode
        if mode not in ("real", "modeled"):
            raise ConfigurationError(f"unknown execution mode {mode!r}")
        return mode

    # -- modeled path ----------------------------------------------------------------
    def _sim_tasks(self, workload: Workload, threads_per_task: int) -> list[SimTask]:
        tasks = []
        for task in workload.tasks:
            circuit = task.build_circuit()
            shots = task.shots if task.shots is not None else get_config().shots
            if self.use_plan_costs:
                from ..simulator.plan_cache import get_plan_cache

                plan = get_plan_cache().get_or_compile(circuit)
                cost = self.cost_model.plan_cost(
                    plan,
                    shots,
                    chunked=self.chunked_plan_costs,
                    processes=self.shm_plan_processes,
                )
            else:
                cost = self.cost_model.circuit_cost(circuit, shots)
            tasks.append(
                SimTask.from_cost(
                    task.name,
                    parallel_work=cost.parallel_work,
                    serial_work=cost.serial_work,
                    locked_work=cost.locked_work,
                    threads=threads_per_task,
                )
            )
        return tasks

    def _run_modeled(
        self, workload: Workload, variant: str, total_threads: int
    ) -> VariantResult:
        scheduler = TaskScheduler(contention=self.contention)
        if variant == "one-by-one":
            threads_per_task = total_threads
            result = scheduler.run_one_by_one(self._sim_tasks(workload, threads_per_task))
        elif variant == "parallel":
            threads_per_task = max(1, total_threads // max(1, workload.n_tasks))
            result = scheduler.run_parallel(self._sim_tasks(workload, threads_per_task))
        else:
            raise ConfigurationError(f"unknown variant {variant!r}")
        label = self._label(variant, total_threads, threads_per_task, workload.n_tasks)
        return VariantResult(
            label=label,
            variant=variant,
            total_threads=total_threads,
            threads_per_task=threads_per_task,
            duration=result.makespan,
            mode="modeled",
            details={"completion_times": result.completion_times},
        )

    # -- real path ------------------------------------------------------------------------
    def _run_real(self, workload: Workload, variant: str, total_threads: int) -> VariantResult:
        if variant == "one-by-one":
            report = real_one_by_one(workload.tasks, total_threads, backend=self.backend)
        elif variant == "parallel":
            report = real_parallel(workload.tasks, total_threads, backend=self.backend)
        else:
            raise ConfigurationError(f"unknown variant {variant!r}")
        label = self._label(variant, total_threads, report.threads_per_task, workload.n_tasks)
        return VariantResult(
            label=label,
            variant=variant,
            total_threads=total_threads,
            threads_per_task=report.threads_per_task,
            duration=report.wall_time_seconds,
            mode="real",
            details={"per_task_seconds": {r.name: r.duration_seconds for r in report.results}},
        )

    # -- public API --------------------------------------------------------------------------
    def run_variant(self, workload: Workload, variant: str, total_threads: int) -> VariantResult:
        """Run one (variant, total-thread-count) configuration."""
        if total_threads < 1:
            raise ConfigurationError(f"total_threads must be at least 1, got {total_threads}")
        mode = self._resolve_mode()
        if mode == "modeled":
            return self._run_modeled(workload, variant, total_threads)
        return self._run_real(workload, variant, total_threads)

    def compare(
        self, workload: Workload, total_threads: int
    ) -> tuple[VariantResult, VariantResult]:
        """Run both variants at the same total thread count."""
        return (
            self.run_variant(workload, "one-by-one", total_threads),
            self.run_variant(workload, "parallel", total_threads),
        )

    @staticmethod
    def _label(variant: str, total: int, per_task: int, n_tasks: int) -> str:
        if variant == "one-by-one":
            return f"one-by-one {total} threads"
        return f"parallel {n_tasks} x ({per_task} threads/task)"
