"""repro — a Python reproduction of "Enabling Multi-threading in
Heterogeneous Quantum-Classical Programming Models" (Hayashi et al., 2023).

The package implements a QCOR-like single-source quantum-classical
programming model on top of a from-scratch state-vector simulator, and —
the paper's contribution — makes its user-facing runtime safe to drive from
multiple Python threads: per-thread accelerator instances managed by a
QPUManager, locked allocation and service lookup, and ``std::thread`` /
``std::async``-style launch wrappers.

Quickstart (the paper's Listing 1)::

    import repro
    from repro import qpu
    from repro.compiler.dsl import H, CX, Measure

    @qpu
    def bell(q):
        H(q[0])
        CX(q[0], q[1])
        for i in range(q.size()):
            Measure(q[i])

    q = repro.qalloc(2)
    bell(q)
    q.print()

Multi-threaded execution (the paper's Listing 4)::

    from repro import qcor_thread

    def foo():
        q = repro.qalloc(2)
        bell(q)
        q.print()

    t0 = qcor_thread(foo)
    t1 = qcor_thread(foo)
    t0.join(); t1.join()
"""

from ._version import __version__, VERSION_INFO
from .cancellation import CancelToken, active_cancel_token, cancel_scope
from .config import Configuration, configure, get_config, reset_config, set_config
from .exceptions import (
    ReproError,
    ConfigurationError,
    CompilationError,
    ExecutionError,
    AllocationError,
    ServiceNotFoundError,
    ServiceOverloadedError,
    NotInitializedError,
    ThreadSafetyViolation,
    OptimizationError,
    JobCancelled,
    DeadlineExceeded,
    AdmissionRejected,
    RetryExhausted,
    WorkerCrashed,
)
from .compiler.kernel import qpu, QuantumKernel
from .core.api import (
    initialize,
    finalize,
    is_initialized,
    qalloc,
    set_shots,
    get_shots,
    set_qpu,
    get_qpu,
    execute_circuit,
    observe_expectation,
)
from .core.threading_api import qcor_thread, qcor_async, TaskGroup
from .exec import (
    ExecutionBackend,
    ExecutionResult,
    LocalBackend,
    RetryPolicy,
    ShardedExecutor,
    get_sharded_executor,
)
from .core.qpu_manager import QPUManager
from .core.objective import createObjectiveFunction, ObjectiveFunction
from .core.optimizer import createOptimizer, Optimizer, OptimizerResult
from .ir import Circuit, CircuitBuilder, CompositeInstruction, Parameter
from .operators import I, X, Y, Z, PauliOperator, PauliTerm
from .runtime import (
    Accelerator,
    AcceleratorBuffer,
    QppAccelerator,
    NoisyAccelerator,
    RemoteAccelerator,
    get_accelerator,
    qreg,
)
from .obs import (
    active_profiler,
    disable_profiler,
    disable_tracing,
    enable_profiler,
    enable_tracing,
    get_tracer,
)
from .service import (
    QuantumJobService,
    JobHandle,
    JobPriority,
    JobResult,
    ResultCache,
    MetricsSnapshot,
    job_key,
    AdmissionController,
    CircuitBreaker,
    estimate_job_bytes,
)

__all__ = [
    "__version__",
    "VERSION_INFO",
    # configuration
    "Configuration",
    "configure",
    "get_config",
    "set_config",
    "reset_config",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "CompilationError",
    "ExecutionError",
    "AllocationError",
    "ServiceNotFoundError",
    "NotInitializedError",
    "ServiceOverloadedError",
    "ThreadSafetyViolation",
    "OptimizationError",
    "JobCancelled",
    "DeadlineExceeded",
    "AdmissionRejected",
    "RetryExhausted",
    "WorkerCrashed",
    # cancellation / deadlines
    "CancelToken",
    "active_cancel_token",
    "cancel_scope",
    # kernels and execution
    "qpu",
    "QuantumKernel",
    "initialize",
    "finalize",
    "is_initialized",
    "qalloc",
    "set_shots",
    "get_shots",
    "set_qpu",
    "get_qpu",
    "execute_circuit",
    "observe_expectation",
    # threading constructs
    "qcor_thread",
    "qcor_async",
    "TaskGroup",
    "QPUManager",
    # execution backends
    "ExecutionBackend",
    "ExecutionResult",
    "LocalBackend",
    "RetryPolicy",
    "ShardedExecutor",
    "get_sharded_executor",
    # variational support
    "createObjectiveFunction",
    "ObjectiveFunction",
    "createOptimizer",
    "Optimizer",
    "OptimizerResult",
    # IR
    "Circuit",
    "CircuitBuilder",
    "CompositeInstruction",
    "Parameter",
    # operators
    "I",
    "X",
    "Y",
    "Z",
    "PauliOperator",
    "PauliTerm",
    # runtime
    "Accelerator",
    "AcceleratorBuffer",
    "QppAccelerator",
    "NoisyAccelerator",
    "RemoteAccelerator",
    "get_accelerator",
    "qreg",
    # observability
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "enable_profiler",
    "disable_profiler",
    "active_profiler",
    # job broker service
    "QuantumJobService",
    "JobHandle",
    "JobPriority",
    "JobResult",
    "ResultCache",
    "MetricsSnapshot",
    "job_key",
    "AdmissionController",
    "CircuitBreaker",
    "estimate_job_bytes",
]
