"""Classical parallelism substrate.

The paper evaluates on a 12-core / 24-hardware-thread AMD Ryzen 9 3900X with
the OpenMP-parallel Quantum++ backend.  This subpackage models that side of
the system:

* :class:`MachineTopology` — physical cores, SMT width and the throughput a
  given number of active software threads can extract from the machine.
* :mod:`~repro.parallel.contention` — the parallel-efficiency / SMT /
  cache-contention model calibrated against the paper's figures.
* :class:`TaskScheduler` — a processor-sharing discrete-event simulator used
  by the ``modeled`` execution mode; it is what reproduces the paper's key
  observation that two kernels run *in parallel* with N/2 threads each beat
  the same kernels run one-by-one with N threads.
* :class:`WorkerPool` / :mod:`~repro.parallel.thread_tools` — real
  thread-pool execution and thin ``std::thread`` / ``std::async`` analogues
  used by examples and the ``real`` execution mode.
"""

from .affinity import MachineTopology, PAPER_MACHINE, detect_host_topology
from .contention import ContentionModel, parallel_efficiency
from .scheduler import SimTask, TaskScheduler, WorkPhase, ScheduleResult
from .pool import WorkerPool, omp_get_max_threads
from .thread_tools import std_thread, std_async, join_all

__all__ = [
    "MachineTopology",
    "PAPER_MACHINE",
    "detect_host_topology",
    "ContentionModel",
    "parallel_efficiency",
    "SimTask",
    "WorkPhase",
    "TaskScheduler",
    "ScheduleResult",
    "WorkerPool",
    "omp_get_max_threads",
    "std_thread",
    "std_async",
    "join_all",
]
