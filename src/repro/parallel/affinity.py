"""Machine topology model.

:class:`MachineTopology` describes the classical host the paper's evaluation
targets (physical cores, SMT width, nominal frequency).  The topology is
consumed by the contention model and the discrete-event scheduler; it can
also be auto-detected from the current host for ``real``-mode runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["MachineTopology", "PAPER_MACHINE", "detect_host_topology"]


@dataclass(frozen=True)
class MachineTopology:
    """A shared-memory node with SMT-capable cores."""

    #: Human-readable name of the machine.
    name: str
    #: Number of physical cores.
    physical_cores: int
    #: Hardware threads per core (SMT width; 2 on the paper's Ryzen 9 3900X).
    smt_per_core: int = 2
    #: Nominal core frequency in GHz (informational only).
    frequency_ghz: float = 3.8
    #: Memory capacity in GiB (informational only).
    memory_gib: int = 128

    def __post_init__(self) -> None:
        if self.physical_cores < 1:
            raise ConfigurationError(
                f"physical_cores must be at least 1, got {self.physical_cores}"
            )
        if self.smt_per_core < 1:
            raise ConfigurationError(
                f"smt_per_core must be at least 1, got {self.smt_per_core}"
            )

    @property
    def hardware_threads(self) -> int:
        """Total hardware threads (cores x SMT width)."""
        return self.physical_cores * self.smt_per_core

    def cores_for(self, software_threads: int) -> int:
        """Physical cores occupied when ``software_threads`` are scheduled."""
        return min(software_threads, self.physical_cores)

    def smt_threads_for(self, software_threads: int) -> int:
        """Threads forced onto SMT siblings (beyond one per physical core)."""
        return max(0, min(software_threads, self.hardware_threads) - self.physical_cores)

    def oversubscribed(self, software_threads: int) -> int:
        """Threads beyond the hardware thread count (pure time slicing)."""
        return max(0, software_threads - self.hardware_threads)


#: The evaluation platform of the paper: AMD Ryzen 9 3900X, 12 cores / 24
#: hardware threads at 3.8 GHz with 128 GB of DRAM.
PAPER_MACHINE = MachineTopology(
    name="AMD Ryzen 9 3900X",
    physical_cores=12,
    smt_per_core=2,
    frequency_ghz=3.8,
    memory_gib=128,
)


def detect_host_topology() -> MachineTopology:
    """Best-effort topology of the current host.

    ``os.cpu_count()`` reports hardware threads; without a reliable portable
    way to query SMT width we assume 2 when the count is even and greater
    than 2, matching the common x86 configuration.
    """
    threads = os.cpu_count() or 1
    smt = 2 if threads > 2 and threads % 2 == 0 else 1
    return MachineTopology(
        name="host",
        physical_cores=max(1, threads // smt),
        smt_per_core=smt,
        frequency_ghz=0.0,
        memory_gib=0,
    )
