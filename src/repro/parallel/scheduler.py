"""Processor-sharing discrete-event scheduler.

This is the ``modeled`` execution engine: it simulates how a set of
multi-threaded kernel simulations share the paper's machine, producing
deterministic makespans from which the figures' speed-up ratios are derived.

Model
-----
A :class:`SimTask` is a sequence of :class:`WorkPhase` objects.  A phase has
an amount of abstract work and a *width*: serial phases (width 1) model gate
dispatch, shot post-processing and runtime bookkeeping; parallel phases
(width = the task's OpenMP team size) model the amplitude updates and
sampling that Quantum++ parallelises.

The scheduler advances time with a fluid processor-sharing approximation:
between events, every active phase consumes work at a rate determined by the
:class:`~repro.parallel.contention.ContentionModel` given the total number
of software threads currently active on the machine.  Events occur whenever
some task finishes its current phase (and therefore the machine-wide rates
change).  This captures the effect the paper exploits: while one kernel is
in a serial phase, a concurrently running kernel's threads soak up the idle
cores, so running two kernels in parallel with N/2 threads each finishes
sooner than running them one after the other with N threads each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import ConfigurationError, ExecutionError
from .contention import ContentionModel

__all__ = ["WorkPhase", "SimTask", "ScheduleResult", "TaskScheduler"]


@dataclass(frozen=True)
class WorkPhase:
    """A contiguous chunk of work executed at a fixed thread width.

    ``locked=True`` marks work performed inside a global runtime critical
    section (the mutexes the paper adds around ``qalloc`` and service
    lookups): at most one task may make progress on a locked phase at any
    simulated instant, regardless of how many cores are free.
    """

    work: float
    width: int
    locked: bool = False

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ConfigurationError(f"phase work must be non-negative, got {self.work}")
        if self.width < 1:
            raise ConfigurationError(f"phase width must be at least 1, got {self.width}")
        if self.locked and self.width != 1:
            raise ConfigurationError("locked phases must have width 1")


@dataclass
class SimTask:
    """A modeled kernel execution: an ordered list of phases."""

    name: str
    phases: Sequence[WorkPhase]
    #: Simulated time at which the task becomes runnable.
    release_time: float = 0.0

    @property
    def total_work(self) -> float:
        return sum(p.work for p in self.phases)

    @property
    def max_width(self) -> int:
        return max((p.width for p in self.phases), default=1)

    @staticmethod
    def from_cost(
        name: str,
        parallel_work: float,
        serial_work: float,
        threads: int,
        locked_work: float = 0.0,
        n_chunks: int = 32,
        release_time: float = 0.0,
    ) -> "SimTask":
        """Build a task interleaving serial, parallel and locked phases.

        Interleaving at ``n_chunks`` granularity (rather than one big serial
        phase followed by one big parallel phase) reflects how gate dispatch
        and amplitude updates alternate in a real simulator and is what lets
        concurrent tasks overlap each other's serial gaps.
        """
        if threads < 1:
            raise ConfigurationError(f"threads must be at least 1, got {threads}")
        if n_chunks < 1:
            raise ConfigurationError(f"n_chunks must be at least 1, got {n_chunks}")
        phases: list[WorkPhase] = []
        serial_chunk = serial_work / n_chunks
        parallel_chunk = parallel_work / n_chunks
        locked_chunk = locked_work / n_chunks
        for _ in range(n_chunks):
            if locked_chunk > 0:
                phases.append(WorkPhase(locked_chunk, 1, locked=True))
            if serial_chunk > 0:
                phases.append(WorkPhase(serial_chunk, 1))
            if parallel_chunk > 0:
                phases.append(WorkPhase(parallel_chunk, threads))
        if not phases:
            phases.append(WorkPhase(0.0, 1))
        return SimTask(name=name, phases=phases, release_time=release_time)


@dataclass
class ScheduleResult:
    """Outcome of a scheduler run."""

    #: Simulated completion time of each task, keyed by task name.
    completion_times: dict[str, float]
    #: Simulated time at which the last task finished.
    makespan: float
    #: Total simulated busy thread-time (for utilisation analyses).
    busy_thread_time: float = 0.0

    def speedup_over(self, baseline: "ScheduleResult") -> float:
        """Baseline makespan divided by this result's makespan."""
        if self.makespan <= 0:
            raise ExecutionError("cannot compute a speed-up for a zero makespan")
        return baseline.makespan / self.makespan


@dataclass
class TaskScheduler:
    """Simulates a set of :class:`SimTask` objects sharing one machine."""

    contention: ContentionModel = field(default_factory=ContentionModel)
    #: Numerical guard: maximum number of scheduling events before aborting.
    max_events: int = 1_000_000

    def run(self, tasks: Sequence[SimTask]) -> ScheduleResult:
        """Simulate ``tasks`` and return their completion times and makespan."""
        if not tasks:
            return ScheduleResult(completion_times={}, makespan=0.0)
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique within a schedule")

        # Per-task mutable progress state.
        phase_index = [0] * len(tasks)
        remaining = [
            tasks[i].phases[0].work if tasks[i].phases else 0.0 for i in range(len(tasks))
        ]
        completion: dict[str, float] = {}
        now = 0.0
        busy_thread_time = 0.0

        def current_width(i: int) -> int:
            return tasks[i].phases[phase_index[i]].width

        def is_active(i: int) -> bool:
            return tasks[i].name not in completion and tasks[i].release_time <= now

        def skip_empty_phases(i: int) -> None:
            """Advance through zero-work phases; record completion when done."""
            while (
                tasks[i].name not in completion
                and phase_index[i] < len(tasks[i].phases)
                and remaining[i] <= 1e-12
            ):
                phase_index[i] += 1
                if phase_index[i] >= len(tasks[i].phases):
                    completion[tasks[i].name] = now
                else:
                    remaining[i] = tasks[i].phases[phase_index[i]].work

        for i in range(len(tasks)):
            skip_empty_phases(i)

        events = 0
        while len(completion) < len(tasks):
            events += 1
            if events > self.max_events:
                raise ExecutionError(
                    f"scheduler exceeded {self.max_events} events; "
                    "check for zero-rate phases"
                )
            active = [i for i in range(len(tasks)) if is_active(i)]
            if not active:
                # Jump to the next release time.
                pending = [
                    tasks[i].release_time
                    for i in range(len(tasks))
                    if tasks[i].name not in completion
                ]
                now = min(pending)
                for i in range(len(tasks)):
                    skip_empty_phases(i)
                continue

            # Global-lock arbitration: only one task may progress on a
            # locked phase at a time; the others are parked for this slice.
            locked_tasks = [
                i for i in active if tasks[i].phases[phase_index[i]].locked
            ]
            lock_holder = min(locked_tasks) if locked_tasks else None
            runnable = [
                i
                for i in active
                if not tasks[i].phases[phase_index[i]].locked or i == lock_holder
            ]

            total_threads = sum(current_width(i) for i in runnable)
            per_thread_rate = self.contention.per_thread_rate(total_threads)
            if per_thread_rate <= 0:
                raise ExecutionError("contention model produced a non-positive rate")

            # Task progress rate = width * per-thread rate / team overhead.
            rates = {}
            for i in runnable:
                width = current_width(i)
                overhead = self.contention.team_overhead_factor(width)
                rates[i] = width * per_thread_rate / overhead

            # Time until the first runnable task finishes its phase, or until
            # a new task is released (whichever comes first).
            dt_phase = min(remaining[i] / rates[i] for i in runnable)
            future_releases = [
                tasks[i].release_time
                for i in range(len(tasks))
                if tasks[i].name not in completion and tasks[i].release_time > now
            ]
            dt_release = min(future_releases) - now if future_releases else float("inf")
            dt = min(dt_phase, dt_release)

            for i in runnable:
                remaining[i] -= rates[i] * dt
                busy_thread_time += current_width(i) * dt
            now += dt
            for i in range(len(tasks)):
                skip_empty_phases(i)

        makespan = max(completion.values(), default=0.0)
        return ScheduleResult(
            completion_times=completion, makespan=makespan, busy_thread_time=busy_thread_time
        )

    # -- convenience entry points used by the benchmark harness -----------------------
    def run_one_by_one(self, tasks: Sequence[SimTask]) -> ScheduleResult:
        """Run tasks strictly back-to-back (the paper's conventional baseline)."""
        result_times: dict[str, float] = {}
        offset = 0.0
        busy = 0.0
        for task in tasks:
            single = self.run([SimTask(task.name, task.phases, release_time=0.0)])
            result_times[task.name] = offset + single.completion_times[task.name]
            offset += single.makespan
            busy += single.busy_thread_time
        return ScheduleResult(
            completion_times=result_times, makespan=offset, busy_thread_time=busy
        )

    def run_parallel(self, tasks: Sequence[SimTask]) -> ScheduleResult:
        """Run all tasks concurrently (the paper's proposed approach)."""
        return self.run(list(tasks))
