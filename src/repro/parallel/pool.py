"""Worker pools and OpenMP-style thread-count helpers.

``WorkerPool`` is a small wrapper over :class:`concurrent.futures` used by
the ``real`` execution mode: shot-level parallelism and the benchmark
harness submit work through it.  Thread pools are the default (NumPy kernels
release the GIL); a process pool can be requested for workloads dominated by
pure-Python classical post-processing.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from ..config import get_config
from ..exceptions import ConfigurationError

__all__ = ["WorkerPool", "omp_get_max_threads", "omp_set_num_threads"]

T = TypeVar("T")
R = TypeVar("R")


def omp_get_max_threads() -> int:
    """Return the configured simulator worker count (``OMP_NUM_THREADS`` analogue)."""
    return get_config().omp_num_threads


def omp_set_num_threads(count: int) -> None:
    """Set the simulator worker count, mirroring ``omp_set_num_threads``."""
    from ..config import set_config

    set_config(omp_num_threads=count)
    os.environ["OMP_NUM_THREADS"] = str(count)


class WorkerPool:
    """A sized pool of workers with ``map``/``submit`` semantics.

    Parameters
    ----------
    num_workers:
        Pool size; defaults to the configured ``omp_num_threads``.
    kind:
        ``"thread"`` (default) or ``"process"``.
    """

    def __init__(self, num_workers: int | None = None, kind: str = "thread"):
        if kind not in ("thread", "process"):
            raise ConfigurationError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.num_workers = int(num_workers) if num_workers is not None else omp_get_max_threads()
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be at least 1, got {self.num_workers}"
            )
        self.kind = kind
        self._executor: concurrent.futures.Executor | None = None

    # -- lifecycle -----------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        self._executor = self._make_executor()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _make_executor(self) -> concurrent.futures.Executor:
        if self.kind == "thread":
            return concurrent.futures.ThreadPoolExecutor(max_workers=self.num_workers)
        return concurrent.futures.ProcessPoolExecutor(max_workers=self.num_workers)

    def _ensure_executor(self) -> concurrent.futures.Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    # -- execution --------------------------------------------------------------------
    def submit(self, fn: Callable[..., R], *args, **kwargs) -> concurrent.futures.Future:
        """Submit one call; returns a future."""
        return self._ensure_executor().submit(fn, *args, **kwargs)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving order; propagates exceptions."""
        executor = self._ensure_executor()
        return list(executor.map(fn, items))

    def starmap(self, fn: Callable[..., R], argument_tuples: Iterable[Sequence]) -> list[R]:
        """Like :meth:`map` but unpacks each argument tuple."""
        executor = self._ensure_executor()
        futures = [executor.submit(fn, *args) for args in argument_tuples]
        return [f.result() for f in futures]

    def imap_unordered(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> Iterator[R]:
        """Yield results as they complete (order not preserved)."""
        executor = self._ensure_executor()
        futures = [executor.submit(fn, item) for item in items]
        for future in concurrent.futures.as_completed(futures):
            yield future.result()

    def __repr__(self) -> str:
        return f"WorkerPool(num_workers={self.num_workers}, kind={self.kind!r})"
