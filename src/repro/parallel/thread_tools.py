"""Thin ``std::thread`` / ``std::async`` analogues.

The paper's user-facing constructs are plain C++ ``std::thread`` and
``std::async``; the Python equivalents here are intentionally minimal
wrappers over :mod:`threading` and :mod:`concurrent.futures` so that the
examples read like Listings 4 and 5 of the paper.  The QCOR-aware wrappers
that also perform the per-thread runtime initialisation live in
:mod:`repro.core.threading_api`.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Callable, Iterable, TypeVar

__all__ = ["std_thread", "std_async", "join_all"]

R = TypeVar("R")

#: Shared executor backing std_async (lazily created, grown on demand).
_async_executor: concurrent.futures.ThreadPoolExecutor | None = None
_async_lock = threading.Lock()


def std_thread(target: Callable[..., object], *args, **kwargs) -> threading.Thread:
    """Create **and start** a thread running ``target(*args, **kwargs)``.

    Mirrors ``std::thread t(foo);`` — construction starts execution; the
    caller is responsible for ``join()``.
    """
    thread = threading.Thread(target=target, args=args, kwargs=kwargs)
    thread.start()
    return thread


def std_async(fn: Callable[..., R], *args, **kwargs) -> "concurrent.futures.Future[R]":
    """Launch ``fn`` asynchronously and return a future (``std::async`` analogue).

    The launch policy is always the equivalent of ``std::launch::async``: the
    callable starts running immediately on a pool thread.
    """
    global _async_executor
    with _async_lock:
        if _async_executor is None:
            _async_executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=32, thread_name_prefix="repro-async"
            )
        executor = _async_executor
    return executor.submit(fn, *args, **kwargs)


def join_all(threads: Iterable[threading.Thread]) -> None:
    """Join every thread in ``threads`` (convenience for examples/tests)."""
    for thread in threads:
        thread.join()
