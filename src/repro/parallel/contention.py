"""Parallel-efficiency and contention model.

The paper's AMD uProf analysis attributes the lack of scaling from 12 to 24
threads to L1 data-cache misses: the second SMT thread on a core contributes
almost nothing (and can hurt) once the working set thrashes L1.  The
:class:`ContentionModel` captures this with three ingredients:

* **SMT yield** — the fraction of an extra core's throughput a second SMT
  sibling provides (0 means the second hardware thread adds nothing).
* **Cache penalty** — a multiplicative throughput loss applied to *all*
  active threads once the machine runs more software threads than physical
  cores, modelling the shared-L1/L2 thrash the paper measured.
* **Per-thread synchronisation overhead** — OpenMP fork/join and barrier
  costs that grow with the team size; this is what makes 24-thread teams
  slightly *slower* than 12-thread teams for the Bell kernel (Figure 3,
  0.96x).

The same model serves both the analytic :func:`parallel_efficiency` helper
and the discrete-event :class:`~repro.parallel.scheduler.TaskScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .affinity import MachineTopology, PAPER_MACHINE

__all__ = ["ContentionModel", "parallel_efficiency"]


@dataclass(frozen=True)
class ContentionModel:
    """Throughput model for a team of software threads on a machine."""

    machine: MachineTopology = PAPER_MACHINE
    #: Throughput contribution of a second SMT thread on an occupied core,
    #: relative to a full core (0.0 - 1.0).
    smt_yield: float = 0.15
    #: Relative throughput lost per SMT-shared core due to cache thrash.
    cache_penalty: float = 0.08
    #: Work-equivalent synchronisation overhead added per extra thread in a
    #: team, as a fraction of the phase's per-thread work.
    sync_overhead_per_thread: float = 0.008

    def __post_init__(self) -> None:
        if not 0.0 <= self.smt_yield <= 1.0:
            raise ConfigurationError(f"smt_yield must be in [0, 1], got {self.smt_yield}")
        if not 0.0 <= self.cache_penalty <= 1.0:
            raise ConfigurationError(
                f"cache_penalty must be in [0, 1], got {self.cache_penalty}"
            )
        if self.sync_overhead_per_thread < 0:
            raise ConfigurationError("sync_overhead_per_thread must be non-negative")

    # -- machine-level throughput -------------------------------------------------
    def total_throughput(self, active_threads: int) -> float:
        """Aggregate work rate (in core-equivalents) of ``active_threads``.

        One thread per physical core contributes 1.0; SMT siblings contribute
        ``smt_yield``; the shared-cache penalty reduces the whole machine's
        rate in proportion to how many cores are SMT-shared.  Threads beyond
        the hardware thread count add nothing (pure time slicing).
        """
        if active_threads <= 0:
            return 0.0
        machine = self.machine
        cores = machine.cores_for(active_threads)
        smt_threads = machine.smt_threads_for(active_threads)
        raw = cores + self.smt_yield * smt_threads
        shared_fraction = smt_threads / machine.physical_cores if machine.physical_cores else 0.0
        return raw * (1.0 - self.cache_penalty * shared_fraction)

    def per_thread_rate(self, active_threads: int) -> float:
        """Work rate of a single thread when ``active_threads`` share the machine."""
        if active_threads <= 0:
            return 0.0
        return self.total_throughput(active_threads) / active_threads

    # -- team-level efficiency -------------------------------------------------------
    def team_overhead_factor(self, team_size: int) -> float:
        """Multiplicative work inflation for a team of ``team_size`` threads."""
        if team_size <= 0:
            raise ConfigurationError(f"team_size must be positive, got {team_size}")
        return 1.0 + self.sync_overhead_per_thread * (team_size - 1)

    def effective_speedup(self, team_size: int, background_threads: int = 0) -> float:
        """Speed-up of a perfectly parallel region run by ``team_size`` threads.

        ``background_threads`` accounts for other tasks running concurrently
        on the same machine (the paper's parallel two-kernel scenario).
        """
        active = team_size + background_threads
        rate = self.per_thread_rate(active)
        return team_size * rate / self.team_overhead_factor(team_size)


def parallel_efficiency(
    team_size: int,
    model: ContentionModel | None = None,
    background_threads: int = 0,
) -> float:
    """Parallel efficiency (speed-up / team size) under ``model``."""
    model = model or ContentionModel()
    if team_size <= 0:
        raise ConfigurationError(f"team_size must be positive, got {team_size}")
    return model.effective_speedup(team_size, background_threads) / team_size
