"""Job descriptions, priorities, results and the user-facing handle.

A *job* is one client request: run this circuit on this backend with this
many shots.  The broker may satisfy it without any backend execution (cache
hit), by attaching it to an identical pending job (coalescing), or by
dispatching a fresh execution; the :class:`JobResult` records which path was
taken so benchmarks and tests can assert on the broker's behaviour, not just
its outputs.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..cancellation import CancelToken
from ..exceptions import ExecutionError, JobCancelled
from ..ir.composite import CompositeInstruction
from ..obs.trace import NOOP_SPAN

__all__ = ["JobPriority", "JobSpec", "JobResult", "JobHandle"]


class JobPriority(enum.IntEnum):
    """Scheduling priority; lower values are served first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one submitted job."""

    key: str
    circuit: CompositeInstruction
    backend: str
    shots: int
    n_qubits: int
    priority: JobPriority = JobPriority.NORMAL
    options: Mapping[str, object] = field(default_factory=dict)
    #: Absolute wall-clock deadline (``time.time()``-based) or ``None``.
    #: Deliberately excluded from the job key: a deadline changes whether a
    #: result arrives, never what the result is.
    deadline: float | None = None
    #: Sweep-chunk payload (a :class:`repro.service.sweep._SweepChunk`) when
    #: this spec is one fan-out chunk of a parameter sweep; ``None`` for
    #: ordinary jobs.  Chunk keys are unique per chunk, so sweep specs never
    #: coalesce with each other or with plain submissions.
    sweep: object | None = None
    #: Tenant this job was submitted under (``None`` = untenanted); used
    #: only to apply per-tenant default deadlines/retry policies at submit.
    tenant: str | None = None
    #: Per-job retry policy override (tenant default or explicit); ``None``
    #: falls back to the service-wide policy.
    retry_policy: object | None = None

    def __post_init__(self) -> None:
        if self.shots <= 0:
            raise ExecutionError(f"shots must be positive, got {self.shots}")
        if self.n_qubits < 1:
            raise ExecutionError(f"jobs need at least 1 qubit, got {self.n_qubits}")


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: the histogram plus how the broker produced it."""

    #: Measurement histogram with exactly ``shots`` total observations.
    counts: Mapping[str, int]
    #: Number of shots the client asked for (and ``counts`` sums to).
    shots: int
    #: Backend that produced (or originally produced) the counts.
    backend: str
    #: Canonical job key the result was filed under.
    key: str
    #: True when no backend execution happened for this job at all.
    from_cache: bool = False
    #: True when this job shared a single backend execution with others.
    coalesced: bool = False
    #: Wall-clock seconds of the backend execution serving this job
    #: (0.0 for pure cache hits).
    execution_seconds: float = 0.0

    def total_counts(self) -> int:
        return sum(self.counts.values())


class JobHandle:
    """Future-like handle returned by :meth:`QuantumJobService.submit`."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self._future: "concurrent.futures.Future[JobResult]" = concurrent.futures.Future()
        #: Root span of this job's trace (broker-set; a shared no-op span
        #: when tracing is off, so resolution paths never branch on it).
        self._trace_span = NOOP_SPAN
        #: Wall-clock submit time, anchoring the retroactive queue-wait span.
        self._enqueued_wall = 0.0
        #: Cooperative cancellation token (broker-set; carries the job's
        #: absolute deadline).  ``None`` only for handles constructed outside
        #: the broker.
        self.cancel_token: CancelToken | None = None
        #: Broker-set liveness probe: ``False`` once nothing can resolve
        #: this handle any more (dispatcher pool dead, or the service shut
        #: down before it ever started).  Consulted by unbounded ``result()``
        #: waits so a client never hangs on an orphaned handle.
        self._service_alive: Callable[[], bool] | None = None

    # -- tracing ---------------------------------------------------------------
    @property
    def trace_id(self) -> str | None:
        """Trace id of this job's span tree (``None`` when tracing is off)."""
        ctx = self._trace_span.context()
        return ctx.trace_id if ctx is not None else None

    # -- metadata ---------------------------------------------------------------
    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def shots(self) -> int:
        return self.spec.shots

    # -- lifecycle --------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; returns True when it took effect.

        Immediate for the client: the handle resolves with
        :class:`~repro.exceptions.JobCancelled` right away (``False`` when
        the job already completed).  Cooperative for the backend: the token
        trips, and any in-flight replay abandons the job at its next step
        boundary — a worker process is never killed to cancel a job.
        """
        if self.cancel_token is not None:
            self.cancel_token.cancel()
        if self._future.done():
            return isinstance(self._future.exception(), JobCancelled)
        self._fail(JobCancelled("job was cancelled by the client"))
        # _fail is conditional, so re-read what actually won the race.
        return isinstance(self._future.exception(), JobCancelled)

    @property
    def cancelled(self) -> bool:
        token = self.cancel_token
        return token is not None and token.cancelled

    # -- future protocol -------------------------------------------------------
    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job resolves; raises the job's error if it failed.

        An unbounded wait (``timeout=None``) is not a blind block: the
        handle polls, and raises :class:`TimeoutError` as soon as the
        broker reports it can no longer resolve this job (dispatcher pool
        dead, or the service shut down before starting) — a client never
        hangs forever on an orphaned handle.
        """
        if timeout is not None:
            return self._future.result(timeout)
        while True:
            try:
                return self._future.result(timeout=0.1)
            except concurrent.futures.TimeoutError:
                alive = self._service_alive
                if alive is None:
                    continue
                try:
                    if alive():
                        continue
                except Exception:
                    pass  # a dying probe means a dying service: fall through
                raise TimeoutError(
                    f"job {self.key[:12]} cannot resolve any more: the "
                    "service's dispatcher pool is not running"
                ) from None

    def exception(self, timeout: float | None = None) -> BaseException | None:
        return self._future.exception(timeout)

    def counts(self, timeout: float | None = None) -> dict[str, int]:
        """Convenience: block and return just the histogram."""
        return dict(self.result(timeout).counts)

    def add_done_callback(self, fn) -> None:
        self._future.add_done_callback(lambda _future: fn(self))

    # -- asyncio bridge ----------------------------------------------------------
    def asyncio_future(self) -> "asyncio.Future[JobResult]":
        """This job as an asyncio future on the running event loop.

        Each call wraps the underlying ``concurrent.futures`` future anew,
        so handles can be awaited from several coroutines independently.
        """
        return asyncio.wrap_future(self._future)

    async def aresult(self) -> JobResult:
        """Await the job's resolution without blocking the event loop."""
        return await self.asyncio_future()

    def __await__(self):
        """``result = await handle`` — see :meth:`QuantumJobService.asubmit`."""
        return self.asyncio_future().__await__()

    # -- resolution (broker-side) ------------------------------------------------
    def _resolve(self, result: JobResult) -> None:
        if not self._future.done():
            self._future.set_result(result)

    def _fail(self, error: BaseException) -> None:
        if not self._future.done():
            self._future.set_exception(error)

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"JobHandle(key={self.key[:12]}…, shots={self.shots}, {state})"
