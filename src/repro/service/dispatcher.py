"""Dispatcher pool: N worker threads, each owning a per-thread QPU.

This is where the broker meets the paper.  Every worker thread begins by
calling :func:`repro.core.api.initialize` — in thread-safe mode that
registers a *fresh accelerator clone* for the worker with the
:class:`~repro.core.qpu_manager.QPUManager` (the Listing 8 path), so the
pool's concurrent executions never share simulator state.  In legacy mode
the same call races on the shared global ``qpu`` of Listing 7, and the
execution itself is wrapped in an unsafe race-detector section on the same
``"global_qpu"`` resource — running the broker with ``thread_safe=False``
therefore *records* the data races the paper analyses, while the default
mode records none.  Demonstrating that contrast under real service load is
part of the reproduction.

In the broker's process-shard mode (``QuantumJobService(processes=N)``)
these threads stop being where simulation happens: each worker still owns
its per-thread QPU clone (the paper's safety property is preserved), but
the batch handler routes cache-missed executions to the
:class:`~repro.exec.sharded.ShardedExecutor` shard that owns the batch's
job key.  The pool then acts as N concurrent *feeders* keeping every shard
process busy — dispatch stays on threads, simulation scales past the GIL
on processes, and hash affinity keeps each shard's plan cache warm for
exactly the keys it serves.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable

from ..config import get_config
from ..core.api import finalize, initialize
from ..core.race_detector import get_race_detector
from ..runtime.accelerator import Accelerator
from .batching import BatchingJobQueue, PendingBatch

__all__ = ["DispatcherPool"]


class DispatcherPool:
    """Fixed pool of dispatch threads draining a :class:`BatchingJobQueue`."""

    def __init__(
        self,
        queue: BatchingJobQueue,
        handler: Callable[[PendingBatch, Accelerator], None],
        workers: int = 4,
        backend: str | None = None,
        backend_options: dict[str, object] | None = None,
        name: str = "job-broker",
        on_init_failure: Callable[[BaseException], None] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"dispatcher pool needs at least 1 worker, got {workers}")
        self._queue = queue
        self._handler = handler
        self._backend = backend
        self._backend_options = dict(backend_options or {})
        self._on_init_failure = on_init_failure
        self._threads = [
            threading.Thread(
                target=self._run, name=f"{name}-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        self._started = False
        self._init_errors: list[BaseException] = []
        self._init_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def join(self, timeout: float | None = None) -> None:
        """Wait for every worker to exit (call after closing the queue)."""
        for thread in self._threads:
            thread.join(timeout)

    def alive_count(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())

    @property
    def size(self) -> int:
        return len(self._threads)

    def init_errors(self) -> list[BaseException]:
        """Initialization failures observed by workers (diagnostics)."""
        with self._init_lock:
            return list(self._init_errors)

    def all_workers_failed_init(self) -> bool:
        """True when every worker died in ``initialize()`` — nothing will
        ever drain the queue (``alive_count`` can't express this: the last
        failing worker is still alive while reporting its own failure)."""
        with self._init_lock:
            return len(self._init_errors) >= len(self._threads)

    # -- worker body --------------------------------------------------------------
    def _run(self) -> None:
        try:
            # The per-thread quantum::initialize() the paper requires; each
            # worker gets its own accelerator clone in thread-safe mode.
            # The returned instance is kept for the worker's whole life: in
            # legacy mode a per-batch get_qpu() could lazily re-resolve the
            # nulled shared global *without* this pool's backend options.
            qpu = initialize(self._backend, options=self._backend_options or None)
        except BaseException as exc:
            with self._init_lock:
                self._init_errors.append(exc)
            if self._on_init_failure is not None:
                self._on_init_failure(exc)
            return
        try:
            while True:
                batch = self._queue.get(timeout=None)
                if batch is None:
                    return
                with self._execution_guard():
                    self._handler(batch, qpu)
        finally:
            finalize()

    @staticmethod
    def _execution_guard() -> contextlib.AbstractContextManager:
        """Race-detector section around one backend execution.

        Safe (unrecorded) in thread-safe mode where each worker holds its
        own clone; unsafe (recorded, and overlapping under load) in legacy
        mode where every worker drives the one shared instance.
        """
        return get_race_detector().access("global_qpu", safe=get_config().thread_safe)
