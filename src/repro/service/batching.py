"""Priority queue that coalesces identical pending jobs into batches.

The broker's queue holds :class:`PendingBatch` objects, each the fusion of
every not-yet-dispatched job with the same canonical key.  Submitting a job
whose key matches a pending batch *attaches* to it instead of adding queue
depth — one backend execution (at the largest requested shot count) will
resolve all attached handles.  Once a worker claims a batch it stops
accepting riders, so a result can never be published before a late rider
attaches.

Backpressure is expressed in client jobs (attached riders count): ``put``
blocks until depth drops below the bound, ``put(block=False)`` raises
:class:`~repro.exceptions.ServiceOverloadedError` immediately.  Priorities
are served lowest-value-first; a high-priority rider promotes its whole
batch (lazily — stale heap entries are skipped on pop).
"""

from __future__ import annotations

import heapq
import itertools
import threading

from ..exceptions import ExecutionError, ServiceOverloadedError
from .job import JobHandle, JobSpec

__all__ = ["PendingBatch", "BatchingJobQueue"]


class PendingBatch:
    """All currently-pending jobs sharing one canonical key."""

    def __init__(self, spec: JobSpec):
        self.key = spec.key
        #: Representative circuit/backend (identical across riders by key).
        self.spec = spec
        self.handles: list[JobHandle] = []
        self.priority = spec.priority
        self.claimed = False
        #: Priority of this batch's newest (best) heap entry; entries filed
        #: under a worse value are stale and skipped on pop.
        self.pushed_priority = int(spec.priority)

    def attach(self, handle: JobHandle) -> None:
        self.handles.append(handle)
        if handle.spec.priority < self.priority:
            self.priority = handle.spec.priority

    @property
    def target_shots(self) -> int:
        """Shots one execution must produce to satisfy every rider."""
        return max(handle.shots for handle in self.handles)

    def __len__(self) -> int:
        return len(self.handles)


class BatchingJobQueue:
    """Bounded, priority-ordered, coalescing job queue."""

    def __init__(self, max_pending: int = 64):
        if max_pending < 1:
            raise ExecutionError(f"max_pending must be at least 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._pending: dict[str, PendingBatch] = {}
        self._heap: list[tuple[int, int, PendingBatch]] = []
        self._tiebreak = itertools.count()
        self._depth = 0  # client jobs awaiting dispatch (riders included)
        self._closed = False

    # -- producer side ------------------------------------------------------------
    def put(
        self, handle: JobHandle, block: bool = True, timeout: float | None = None
    ) -> str:
        """Enqueue ``handle``; returns ``"queued"`` or ``"coalesced"``.

        Raises :class:`ServiceOverloadedError` when the queue is full and
        ``block`` is false (or the timeout elapses), and
        :class:`ExecutionError` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise ExecutionError("job queue is closed; the service was shut down")
            # Coalescing does not add depth, so riders bypass backpressure.
            batch = self._pending.get(handle.key)
            if batch is not None and not batch.claimed:
                self._attach(batch, handle)
                return "coalesced"
            if self._depth >= self.max_pending:
                if not block:
                    raise ServiceOverloadedError(self._depth, self.max_pending)
                deadline_ok = self._not_full.wait_for(
                    lambda: self._closed or self._depth < self.max_pending,
                    timeout=timeout,
                )
                if self._closed:
                    raise ExecutionError("job queue is closed; the service was shut down")
                if not deadline_ok:
                    raise ServiceOverloadedError(self._depth, self.max_pending)
                # Re-check for a batch that appeared while we waited.
                batch = self._pending.get(handle.key)
                if batch is not None and not batch.claimed:
                    self._attach(batch, handle)
                    return "coalesced"
            batch = PendingBatch(handle.spec)
            batch.attach(handle)
            self._pending[handle.key] = batch
            self._push(batch)
            self._depth += 1
            self._not_empty.notify()
            return "queued"

    def _attach(self, batch: PendingBatch, handle: JobHandle) -> None:
        """Add a rider (lock held); re-file the batch if the rider promoted it.

        Without the re-push, :meth:`_pop_live` would discard the batch's only
        heap entry as stale (its filed priority no longer matches) and the
        batch — riders, depth and all — would never dispatch.
        """
        batch.attach(handle)
        if int(batch.priority) < batch.pushed_priority:
            self._push(batch)
        self._depth += 1

    def _push(self, batch: PendingBatch) -> None:
        batch.pushed_priority = int(batch.priority)
        heapq.heappush(self._heap, (batch.pushed_priority, next(self._tiebreak), batch))

    # -- consumer side ------------------------------------------------------------
    def get(self, timeout: float | None = None) -> PendingBatch | None:
        """Claim the highest-priority batch; ``None`` on close-and-drained/timeout."""
        with self._lock:
            while True:
                batch = self._pop_live()
                if batch is not None:
                    batch.claimed = True
                    del self._pending[batch.key]
                    self._depth -= len(batch)
                    self._not_full.notify_all()
                    return batch
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None

    def _pop_live(self) -> PendingBatch | None:
        while self._heap:
            priority, _, batch = heapq.heappop(self._heap)
            if batch.claimed or self._pending.get(batch.key) is not batch:
                continue  # stale entry from a lazy promotion
            if priority != int(batch.priority):
                continue  # superseded by a promoted entry still in the heap
            return batch
        return None

    # -- lifecycle / introspection ---------------------------------------------------
    def close(self) -> None:
        """Stop accepting jobs and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        """Client jobs currently awaiting dispatch (riders included)."""
        with self._lock:
            return self._depth

    def pending_batches(self) -> int:
        with self._lock:
            return len(self._pending)
