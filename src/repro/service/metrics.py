"""Broker metrics: counters, per-backend latency histograms, and snapshots.

All mutation goes through one lock; :meth:`ServiceMetrics.snapshot` returns
an immutable :class:`MetricsSnapshot` so monitoring code can read a
consistent view without holding up the dispatch path.

Latencies are recorded into fixed-bucket histograms
(:class:`~repro.obs.metrics.LatencyHistogram`), so the snapshot reports
p50/p95/p99 per backend — the mean alone hides exactly the tail a broker
exists to manage.  :attr:`BackendLatency.mean_seconds` is retained for
compatibility with pre-histogram consumers.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..obs.metrics import HistogramSnapshot, LatencyHistogram
from ..simulator.plan_cache import PlanCacheStats
from .cache import CacheStats

__all__ = [
    "BackendLatency",
    "MetricsSnapshot",
    "ServiceMetrics",
    "normalize_backend_label",
]

#: Valid (normalised) backend labels: the registered accelerator names plus
#: the execution-backend names ("local", "sharded", "density", "qpp", ...).
_BACKEND_LABEL = re.compile(r"[a-z0-9][a-z0-9_.:-]*")


def normalize_backend_label(backend: object) -> str:
    """Normalise a backend label, rejecting junk instead of bucketing it.

    ``increment`` has always raised ``KeyError`` on unknown counter names
    while ``observe_latency`` silently created a bucket for any string —
    so a typo'd caller minted phantom backends that lived in every
    subsequent snapshot.  Latency labels now face the same contract:
    trimmed, lower-cased, and validated against the accelerator-name
    charset, with ``KeyError`` (matching ``increment``) on anything else.
    """
    if not isinstance(backend, str):
        raise KeyError(f"backend label must be a string, got {type(backend).__name__}")
    label = backend.strip().lower()
    if not label or not _BACKEND_LABEL.fullmatch(label):
        raise KeyError(f"invalid backend label {backend!r}")
    return label


@dataclass(frozen=True)
class BackendLatency:
    """Aggregate execution latency observed on one backend."""

    executions: int
    total_seconds: float
    #: Full fixed-bucket distribution (``None`` only for legacy constructions).
    histogram: HistogramSnapshot | None = None

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.executions if self.executions else 0.0

    def _quantile(self, q: float) -> float:
        if self.histogram is None:
            return self.mean_seconds
        return self.histogram.quantile(q)

    @property
    def p50_seconds(self) -> float:
        return self._quantile(0.50)

    @property
    def p95_seconds(self) -> float:
        return self._quantile(0.95)

    @property
    def p99_seconds(self) -> float:
        return self._quantile(0.99)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Consistent view of the broker's counters at one instant."""

    #: Jobs accepted by submit/try_submit (including cache hits and riders).
    submitted: int = 0
    #: Jobs whose handle resolved successfully.
    completed: int = 0
    #: Jobs whose handle resolved with an error.
    failed: int = 0
    #: try_submit calls bounced by backpressure.
    rejected: int = 0
    #: Jobs resolved with JobCancelled (client cancel, queued or in-flight).
    cancelled: int = 0
    #: Jobs resolved with DeadlineExceeded (queued, replaying, or reconciling).
    deadline_exceeded: int = 0
    #: Jobs resolved with AdmissionRejected (memory budget refused them).
    admission_rejected: int = 0
    #: Batches the shard-lane circuit breaker degraded to in-process
    #: execution (tripped-open skips plus the failures that fed the trip).
    breaker_fallbacks: int = 0
    #: Jobs that attached to an already-pending identical batch.
    coalesced: int = 0
    #: Jobs fully served from the result cache (no backend work at all).
    cache_hits: int = 0
    #: Backend executions dispatched (batches, including top-up runs).
    executions: int = 0
    #: Executions routed to the process-sharded backend (0 without sharding).
    sharded_executions: int = 0
    #: Executions the Clifford classifier routed to the stabilizer tableau
    #: (polynomial-time lane; counted within ``executions``).
    stabilizer_executions: int = 0
    #: Sharded executions that replayed an already-compiled worker plan
    #: (the per-worker plan caches earning their keep under hash affinity).
    sharded_plan_hits: int = 0
    #: Parameter-sweep bindings accepted via ``submit_sweep`` (each binding
    #: is one row of a sweep's result table).
    sweep_bindings: int = 0
    #: Sweep chunks fanned out to execution lanes (compile-once fan-out
    #: width actually used, summed over sweeps; cache-served bindings fan
    #: out nothing).
    sweep_fanout: int = 0
    #: Shots actually simulated on backends.
    executed_shots: int = 0
    #: Shots delivered to clients (≥ executed when the cache is earning its keep).
    served_shots: int = 0
    #: Client jobs awaiting dispatch at snapshot time.
    queue_depth: int = 0
    #: Dispatcher threads alive at snapshot time.
    active_workers: int = 0
    #: Process shards serving executions (0 = in-process dispatch).
    process_shards: int = 0
    #: Shard worker processes respawned after dying mid-batch (health).
    shard_respawns: int = 0
    #: In-flight work per shard at snapshot time (empty without sharding;
    #: a persistently deep entry is a hot key-affinity shard).
    shard_queue_depths: tuple[int, ...] = ()
    #: Live shared-memory replay workers across this process's open pools
    #: (0 when the shm lane is unused; shard-hosted pools live in worker
    #: processes and are reported by their own process, not here).
    shm_workers: int = 0
    #: shm worker sets rebuilt after a worker death (health).
    shm_respawns: int = 0
    #: shm step barriers aborted while recovering from a worker death.
    shm_barrier_aborts: int = 0
    #: Bytes resident in shared-memory amplitude segments (state + scratch).
    shm_resident_bytes: int = 0
    #: Resident shm state slots (gangs) live across this process's pools.
    shm_resident_states: int = 0
    #: Online cost-model refinements applied (EWMA updates from measured
    #: per-lane replay timings feeding back into the calibration profile).
    calibration_refinements: int = 0
    #: Shard-lane circuit-breaker state at snapshot time
    #: ("closed" / "open" / "half-open"; "closed" without sharding).
    breaker_state: str = "closed"
    #: Times the shard-lane breaker has tripped open since start (health).
    breaker_trips: int = 0
    #: In-process shm-lane circuit-breaker state at snapshot time
    #: ("closed" / "open" / "half-open"; "closed" when the lane is unused).
    shm_breaker_state: str = "closed"
    #: Times the shm-lane breaker has tripped open since start (health).
    shm_breaker_trips: int = 0
    #: Admission memory budget (``None`` = accounting disabled).
    admission_budget_bytes: int | None = None
    #: Bytes reserved by in-flight admission tickets at snapshot time.
    admission_inflight_bytes: int = 0
    #: Tickets currently granted and not yet released.
    admission_inflight_tickets: int = 0
    #: Bytes the admission controller measured resident outside tickets
    #: (compiled plans, cached histograms, shm segments) at snapshot time.
    admission_resident_bytes: int = 0
    #: Tickets granted since start.
    admission_admitted: int = 0
    #: Tickets refused since start (budget exceeded or wait expired).
    admission_rejected_tickets: int = 0
    #: Granted tickets that had to queue before fitting the budget.
    admission_waited: int = 0
    #: Seconds since the service started.
    uptime_seconds: float = 0.0
    #: Cache counter snapshot.
    cache: CacheStats = field(default_factory=CacheStats)
    #: Execution-plan cache snapshot (compilation amortisation across jobs).
    plan_cache: PlanCacheStats = field(default_factory=PlanCacheStats)
    #: Per-backend execution latency aggregates (histogram-backed).
    backend_latency: Mapping[str, BackendLatency] = field(default_factory=dict)

    @property
    def throughput_jobs_per_second(self) -> float:
        return self.completed / self.uptime_seconds if self.uptime_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted jobs fully served from the cache.

        Delegates to the per-lookup cache stats (every submit performs one
        lookup), so coalesced riders count as the misses they are — mixing
        per-job hits with per-*batch* executions would overstate the rate.
        """
        return self.cache.hit_rate


class ServiceMetrics:
    """Lock-protected mutable counters behind the snapshot API."""

    _COUNTERS = (
        "submitted",
        "completed",
        "failed",
        "rejected",
        "cancelled",
        "deadline_exceeded",
        "admission_rejected",
        "breaker_fallbacks",
        "coalesced",
        "cache_hits",
        "executions",
        "sharded_executions",
        "stabilizer_executions",
        "sharded_plan_hits",
        "sweep_bindings",
        "sweep_fanout",
        "executed_shots",
        "served_shots",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._COUNTERS}
        self._latency: dict[str, LatencyHistogram] = {}
        self._started = time.monotonic()

    def increment(self, counter: str, amount: int = 1) -> None:
        if counter not in self._counts:
            raise KeyError(f"unknown metrics counter {counter!r}")
        with self._lock:
            self._counts[counter] += amount

    def observe_latency(self, backend: str, seconds: float) -> None:
        label = normalize_backend_label(backend)
        with self._lock:
            histogram = self._latency.get(label)
            if histogram is None:
                histogram = self._latency[label] = LatencyHistogram()
        histogram.observe(seconds)

    def snapshot(
        self,
        queue_depth: int = 0,
        active_workers: int = 0,
        cache: CacheStats | None = None,
        plan_cache: PlanCacheStats | None = None,
        process_shards: int = 0,
        shard_respawns: int = 0,
        shard_queue_depths: tuple[int, ...] = (),
        shm_workers: int = 0,
        shm_respawns: int = 0,
        shm_barrier_aborts: int = 0,
        shm_resident_bytes: int = 0,
        shm_resident_states: int = 0,
        calibration_refinements: int = 0,
        breaker_state: str = "closed",
        breaker_trips: int = 0,
        shm_breaker_state: str = "closed",
        shm_breaker_trips: int = 0,
        admission_budget_bytes: int | None = None,
        admission_inflight_bytes: int = 0,
        admission_inflight_tickets: int = 0,
        admission_resident_bytes: int = 0,
        admission_admitted: int = 0,
        admission_rejected_tickets: int = 0,
        admission_waited: int = 0,
    ) -> MetricsSnapshot:
        with self._lock:
            counts = dict(self._counts)
            histograms = dict(self._latency)
            uptime = time.monotonic() - self._started
        latency = {}
        for backend, histogram in histograms.items():
            hist = histogram.snapshot()
            latency[backend] = BackendLatency(
                executions=hist.count,
                total_seconds=hist.total_seconds,
                histogram=hist,
            )
        return MetricsSnapshot(
            queue_depth=queue_depth,
            active_workers=active_workers,
            process_shards=process_shards,
            shard_respawns=shard_respawns,
            shard_queue_depths=tuple(shard_queue_depths),
            shm_workers=shm_workers,
            shm_respawns=shm_respawns,
            shm_barrier_aborts=shm_barrier_aborts,
            shm_resident_bytes=shm_resident_bytes,
            shm_resident_states=shm_resident_states,
            calibration_refinements=calibration_refinements,
            breaker_state=breaker_state,
            breaker_trips=breaker_trips,
            shm_breaker_state=shm_breaker_state,
            shm_breaker_trips=shm_breaker_trips,
            admission_budget_bytes=admission_budget_bytes,
            admission_inflight_bytes=admission_inflight_bytes,
            admission_inflight_tickets=admission_inflight_tickets,
            admission_resident_bytes=admission_resident_bytes,
            admission_admitted=admission_admitted,
            admission_rejected_tickets=admission_rejected_tickets,
            admission_waited=admission_waited,
            uptime_seconds=uptime,
            cache=cache or CacheStats(),
            plan_cache=plan_cache or PlanCacheStats(),
            backend_latency=latency,
            **counts,
        )
