"""Broker metrics: counters, per-backend latency, and point-in-time snapshots.

All mutation goes through one lock; :meth:`ServiceMetrics.snapshot` returns
an immutable :class:`MetricsSnapshot` so monitoring code can read a
consistent view without holding up the dispatch path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..simulator.plan_cache import PlanCacheStats
from .cache import CacheStats

__all__ = ["BackendLatency", "MetricsSnapshot", "ServiceMetrics"]


@dataclass(frozen=True)
class BackendLatency:
    """Aggregate execution latency observed on one backend."""

    executions: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.executions if self.executions else 0.0


@dataclass(frozen=True)
class MetricsSnapshot:
    """Consistent view of the broker's counters at one instant."""

    #: Jobs accepted by submit/try_submit (including cache hits and riders).
    submitted: int = 0
    #: Jobs whose handle resolved successfully.
    completed: int = 0
    #: Jobs whose handle resolved with an error.
    failed: int = 0
    #: try_submit calls bounced by backpressure.
    rejected: int = 0
    #: Jobs that attached to an already-pending identical batch.
    coalesced: int = 0
    #: Jobs fully served from the result cache (no backend work at all).
    cache_hits: int = 0
    #: Backend executions dispatched (batches, including top-up runs).
    executions: int = 0
    #: Executions routed to the process-sharded backend (0 without sharding).
    sharded_executions: int = 0
    #: Sharded executions that replayed an already-compiled worker plan
    #: (the per-worker plan caches earning their keep under hash affinity).
    sharded_plan_hits: int = 0
    #: Shots actually simulated on backends.
    executed_shots: int = 0
    #: Shots delivered to clients (≥ executed when the cache is earning its keep).
    served_shots: int = 0
    #: Client jobs awaiting dispatch at snapshot time.
    queue_depth: int = 0
    #: Dispatcher threads alive at snapshot time.
    active_workers: int = 0
    #: Process shards serving executions (0 = in-process dispatch).
    process_shards: int = 0
    #: Shard worker processes respawned after dying mid-batch (health).
    shard_respawns: int = 0
    #: In-flight work per shard at snapshot time (empty without sharding;
    #: a persistently deep entry is a hot key-affinity shard).
    shard_queue_depths: tuple[int, ...] = ()
    #: Seconds since the service started.
    uptime_seconds: float = 0.0
    #: Cache counter snapshot.
    cache: CacheStats = field(default_factory=CacheStats)
    #: Execution-plan cache snapshot (compilation amortisation across jobs).
    plan_cache: PlanCacheStats = field(default_factory=PlanCacheStats)
    #: Per-backend execution latency aggregates.
    backend_latency: Mapping[str, BackendLatency] = field(default_factory=dict)

    @property
    def throughput_jobs_per_second(self) -> float:
        return self.completed / self.uptime_seconds if self.uptime_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted jobs fully served from the cache.

        Delegates to the per-lookup cache stats (every submit performs one
        lookup), so coalesced riders count as the misses they are — mixing
        per-job hits with per-*batch* executions would overstate the rate.
        """
        return self.cache.hit_rate


class ServiceMetrics:
    """Lock-protected mutable counters behind the snapshot API."""

    _COUNTERS = (
        "submitted",
        "completed",
        "failed",
        "rejected",
        "coalesced",
        "cache_hits",
        "executions",
        "sharded_executions",
        "sharded_plan_hits",
        "executed_shots",
        "served_shots",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._COUNTERS}
        self._latency: dict[str, list[float]] = {}  # backend -> [executions, seconds]
        self._started = time.monotonic()

    def increment(self, counter: str, amount: int = 1) -> None:
        if counter not in self._counts:
            raise KeyError(f"unknown metrics counter {counter!r}")
        with self._lock:
            self._counts[counter] += amount

    def observe_latency(self, backend: str, seconds: float) -> None:
        with self._lock:
            bucket = self._latency.setdefault(backend, [0, 0.0])
            bucket[0] += 1
            bucket[1] += seconds

    def snapshot(
        self,
        queue_depth: int = 0,
        active_workers: int = 0,
        cache: CacheStats | None = None,
        plan_cache: PlanCacheStats | None = None,
        process_shards: int = 0,
        shard_respawns: int = 0,
        shard_queue_depths: tuple[int, ...] = (),
    ) -> MetricsSnapshot:
        with self._lock:
            counts = dict(self._counts)
            latency = {
                backend: BackendLatency(executions=int(n), total_seconds=seconds)
                for backend, (n, seconds) in self._latency.items()
            }
            uptime = time.monotonic() - self._started
        return MetricsSnapshot(
            queue_depth=queue_depth,
            active_workers=active_workers,
            process_shards=process_shards,
            shard_respawns=shard_respawns,
            shard_queue_depths=tuple(shard_queue_depths),
            uptime_seconds=uptime,
            cache=cache or CacheStats(),
            plan_cache=plan_cache or PlanCacheStats(),
            backend_latency=latency,
            **counts,
        )
