"""Bounded LRU result cache with shot-count reconciliation.

Entries are keyed by the canonical job key (:mod:`repro.service.keys`), so a
cached histogram represents *all* executions of one (circuit, backend,
config) identity regardless of shot count.  Reconciliation against a
request's shot count happens in two directions:

* the cache holds **at least** as many shots as requested → the stored
  histogram is *subsampled* without replacement (hypergeometric draw) down
  to the requested total, so the served counts are statistically exactly
  what a fresh run of that size would produce given the recorded outcomes;
* the cache holds **fewer** shots than requested → the broker runs only the
  missing shots (a *top-up*) and merges them into the entry via
  :func:`repro.simulator.parallel_engine.merge_counts`.

The cache never hands out mutable internal state: entry histograms are
read-only mapping views shared by every caller.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

import numpy as np

from ..exceptions import ExecutionError
from ..simulator.parallel_engine import merge_counts

__all__ = ["CacheStats", "CachedResult", "ResultCache", "subsample_counts"]


def subsample_counts(
    counts: Mapping[str, int], shots: int, rng: np.random.Generator | None = None
) -> dict[str, int]:
    """Draw ``shots`` observations from ``counts`` without replacement.

    Equivalent to picking ``shots`` of the recorded outcomes uniformly at
    random (a multivariate hypergeometric draw), which is exactly the
    distribution of a prefix of the original run.  ``shots`` equal to the
    histogram total returns a plain copy.
    """
    total = sum(counts.values())
    if shots > total:
        raise ExecutionError(
            f"cannot subsample {shots} shots from a {total}-shot histogram"
        )
    if shots == total:
        return dict(counts)
    rng = rng if rng is not None else np.random.default_rng()
    bitstrings = sorted(counts)
    draws = rng.multivariate_hypergeometric([counts[b] for b in bitstrings], shots)
    return {b: int(d) for b, d in zip(bitstrings, draws) if d > 0}


@dataclass(frozen=True)
class CacheStats:
    """Immutable counter snapshot."""

    hits: int = 0
    partial_hits: int = 0
    misses: int = 0
    insertions: int = 0
    top_ups: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.partial_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups fully served from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class CachedResult:
    """One stored histogram: counts plus provenance.

    ``counts`` is a read-only view — entries are shared with every caller
    that looked the key up, so handing out a mutable dict would let one
    client corrupt what another is served.
    """

    counts: Mapping[str, int]
    shots: int
    backend: str


class ResultCache:
    """Thread-safe bounded LRU cache of measurement histograms."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ExecutionError(f"cache capacity must be at least 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._partial_hits = 0
        self._misses = 0
        self._insertions = 0
        self._top_ups = 0
        self._evictions = 0

    # -- lookup ------------------------------------------------------------------
    def lookup(self, key: str, shots: int) -> CachedResult | None:
        """Return the entry for ``key`` and record hit/partial/miss stats.

        A *hit* means the entry can fully serve ``shots`` (possibly after
        subsampling); a *partial hit* means the entry exists but holds fewer
        shots, so the caller must top it up; a *miss* returns ``None``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            if entry.shots >= shots:
                self._hits += 1
            else:
                self._partial_hits += 1
            return entry

    def peek(self, key: str) -> CachedResult | None:
        """Return the entry without touching stats or LRU order."""
        with self._lock:
            return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- mutation ------------------------------------------------------------------
    def store(self, key: str, counts: Mapping[str, int], backend: str) -> CachedResult:
        """Insert (or replace) the histogram for ``key``; evicts LRU overflow."""
        entry = CachedResult(
            MappingProxyType(dict(counts)), sum(counts.values()), backend
        )
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            self._insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return entry

    def top_up(
        self, key: str, extra_counts: Mapping[str, int], backend: str
    ) -> CachedResult:
        """Merge a top-up run into the entry for ``key`` (creating it if evicted)."""
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                merged = merge_counts([existing.counts, extra_counts])
                self._top_ups += 1
            else:
                merged = dict(extra_counts)
                self._insertions += 1
            entry = CachedResult(
                MappingProxyType(merged), sum(merged.values()), backend
            )
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return entry

    def memory_bytes(self) -> int:
        """Approximate resident bytes of all cached histograms.

        Counts the bitstring keys (one byte per character) and one machine
        word per count — the payload that grows with outcome diversity.
        Container overhead is deliberately ignored: admission control needs
        a stable, cheap estimate, not a profiler.
        """
        with self._lock:
            total = 0
            for entry in self._entries.values():
                for bitstring in entry.counts:
                    total += len(bitstring) + 8
            return total

    def invalidate(self, key: str) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- stats ------------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                partial_hits=self._partial_hits,
                misses=self._misses,
                insertions=self._insertions,
                top_ups=self._top_ups,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
