"""QuantumJobService: the multi-tenant job broker over the thread-safe runtime.

The broker turns the paper's thread-safe runtime (per-thread accelerator
clones, locked registry and allocation) into an actual service: many client
threads submit circuit-execution jobs and get futures back, while a fixed
dispatcher pool drains a bounded priority queue.  Three mechanisms keep the
backend work well below one execution per request:

1. **Result cache** — jobs are keyed by a content hash of (circuit, backend,
   config); a repeat submission is answered from the cache, subsampled down
   to the requested shot count, without touching a simulator.  Requests for
   *more* shots than cached trigger a top-up run of only the missing shots.
2. **Batch coalescing** — identical jobs that are concurrently pending fuse
   into one :class:`~repro.service.batching.PendingBatch`; a single backend
   execution at the largest requested shot count resolves every rider.
3. **Backpressure** — the queue bounds pending client jobs; ``submit``
   blocks for a slot, ``try_submit`` returns ``None`` immediately (and the
   rejection is counted in the metrics snapshot).

With ``processes=N`` the broker adds a fourth mechanism, **process
sharding**: dispatcher threads stop simulating in-process and instead hand
each cache-missed batch to the shard of a
:class:`~repro.exec.sharded.ShardedExecutor` that owns the batch's job key
(hash affinity), so every shard's worker process keeps re-receiving — and
replaying from its warm plan cache — the circuits it has already compiled.
This is the configuration that scales the broker past the GIL.

Typical use::

    with QuantumJobService(backend="qpp", workers=4, processes=4) as service:
        handles = [service.submit(circuit, shots=1024) for _ in range(16)]
        histograms = [handle.counts() for handle in handles]
        print(service.metrics().cache_hit_rate)

Async clients bridge the same futures into an event loop::

    handle = await service.asubmit(circuit, shots=1024)
    result = await handle
"""

from __future__ import annotations

import asyncio
import functools
import math
import secrets
import threading
import time
from typing import Mapping

import numpy as np

from ..cancellation import CancelToken, cancel_scope, combine_tokens
from ..config import get_config
from ..exceptions import (
    DeadlineExceeded,
    ExecutionError,
    JobCancelled,
    ServiceNotFoundError,
    ServiceOverloadedError,
)
from ..exec.retry import RetryPolicy, is_infrastructure_failure
from ..ir.composite import CompositeInstruction
from ..ir.transforms.clifford import classify_clifford
from ..obs.trace import get_tracer
from ..runtime.accelerator import Accelerator
from ..runtime.buffer import AcceleratorBuffer
from ..simulator.cost_model import SIMULATION_METHODS, SimulationCostModel
from .admission import AdmissionController, estimate_job_bytes
from .batching import BatchingJobQueue, PendingBatch
from .breaker import CircuitBreaker
from .cache import ResultCache, subsample_counts
from .dispatcher import DispatcherPool
from .job import JobHandle, JobPriority, JobResult, JobSpec
from .keys import binding_key, canonical_binding, job_key, sweep_key
from .metrics import MetricsSnapshot, ServiceMetrics
from .sweep import BindingResult, SweepHandle, _SweepChunk

__all__ = ["QuantumJobService"]


def _plan_cache_bytes() -> int:
    """Bytes resident in the shared execution-plan cache (admission term)."""
    from ..simulator.plan_cache import get_plan_cache

    return get_plan_cache().memory_bytes()


def _shm_resident_bytes() -> int:
    """Bytes resident in this process's shm amplitude segments (admission term)."""
    from ..exec.shm import shm_health

    return shm_health()["resident_bytes"]


class QuantumJobService:
    """High-throughput broker dispatching quantum jobs to a worker pool."""

    def __init__(
        self,
        backend: str | None = None,
        workers: int = 4,
        max_pending: int = 64,
        cache_capacity: int = 256,
        enable_cache: bool = True,
        backend_options: Mapping[str, object] | None = None,
        name: str = "job-broker",
        auto_start: bool = True,
        processes: int = 0,
        memory_budget_bytes: int | None = None,
        admission_wait_seconds: float = 5.0,
        retry_policy: RetryPolicy | None = None,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_seconds: float = 5.0,
        tenant_defaults: Mapping[str, Mapping[str, object]] | None = None,
    ):
        self.name = name
        #: Per-tenant submission defaults: ``{tenant: {"deadline": seconds,
        #: "retry_policy": RetryPolicy}}``.  Applied to submits (and every
        #: binding of a sweep) that do not carry their own deadline/policy;
        #: an explicit argument always wins.  Unknown tenants get no
        #: defaults — tenancy here is a defaulting namespace, not auth.
        self._tenant_defaults: dict[str, dict[str, object]] = {
            str(tenant): dict(defaults)
            for tenant, defaults in (tenant_defaults or {}).items()
        }
        #: When False, jobs queue up until an explicit :meth:`start` — useful
        #: for deterministic batching tests and delayed-start deployments.
        self.auto_start = auto_start
        self.backend = (backend or get_config().default_accelerator).lower()
        # Fail at construction, not in a worker thread where clients would
        # only ever observe result() timeouts.
        from ..runtime.service_registry import get_registry

        if not get_registry().has_service("accelerator", self.backend):
            raise ServiceNotFoundError(
                f"no accelerator {self.backend!r} registered; "
                f"known: {get_registry().registered_names('accelerator')}"
            )
        self.backend_options = dict(backend_options or {})
        # Lifecycle knobs may also arrive through backend_options (their
        # kebab-case names are declared non-semantic in keys.py, so they
        # never fragment the result cache); explicit arguments win.
        if memory_budget_bytes is None:
            raw_budget = self.backend_options.get("memory-budget-bytes")
            memory_budget_bytes = None if raw_budget is None else int(raw_budget)  # type: ignore[arg-type]
        raw_wait = self.backend_options.get("admission-wait-seconds")
        if raw_wait is not None:
            admission_wait_seconds = float(raw_wait)  # type: ignore[arg-type]
        raw_threshold = self.backend_options.get("breaker-failure-threshold")
        if raw_threshold is not None:
            breaker_failure_threshold = int(raw_threshold)  # type: ignore[arg-type]
        raw_cooldown = self.backend_options.get("breaker-cooldown-seconds")
        if raw_cooldown is not None:
            breaker_cooldown_seconds = float(raw_cooldown)  # type: ignore[arg-type]
        if retry_policy is None:
            raw_attempts = self.backend_options.get("retry-max-attempts")
            if raw_attempts is not None:
                retry_policy = RetryPolicy(
                    max_attempts=int(raw_attempts),  # type: ignore[arg-type]
                    base_delay=0.01,
                    max_delay=0.5,
                )
        #: Process shards (0/1 = classic in-process dispatch).
        self.processes = int(processes or 0)
        self._sharded = None
        if self.processes > 1:
            if self.backend != "qpp":
                raise ExecutionError(
                    f"process sharding replays compiled plans and requires the "
                    f"'qpp' backend, got {self.backend!r}"
                )
            if not bool(self.backend_options.get("use-plans", True)):
                # Plan replay is the only form shards execute; forking
                # workers that could never be used would be pure waste.
                raise ExecutionError(
                    "process sharding requires plan execution; drop "
                    "processes= or remove 'use-plans': False"
                )
            from ..exec.sharded import ShardedExecutor

            # "shm-processes" lets each shard borrow a shared-memory pool
            # for super-threshold single-state replays (the ≥20-qubit lane);
            # in in-process mode the same option flows to the accelerator
            # clones through backend_options instead.
            self._sharded = ShardedExecutor(
                self.processes,
                name=f"{name}-shard",
                shm_processes=int(self.backend_options.get("shm-processes", 0) or 0),
                retry_policy=retry_policy,
            )
        self._queue = BatchingJobQueue(max_pending=max_pending)
        self._cache: ResultCache | None = (
            ResultCache(cache_capacity) if enable_cache else None
        )
        self._metrics = ServiceMetrics()
        self._pool = DispatcherPool(
            self._queue,
            self._process_batch,
            workers=workers,
            backend=self.backend,
            backend_options=self.backend_options,
            name=name,
            on_init_failure=self._worker_init_failed,
        )
        #: Memory-budget admission control (None budget = accounting off).
        #: Resident terms are measured by walking the live structures —
        #: compiled plans, cached histograms, shm amplitude segments — so
        #: the accounting cannot drift from reality.
        self._admission = AdmissionController(
            memory_budget_bytes,
            max_wait=admission_wait_seconds,
            resident_sources=(
                _plan_cache_bytes,
                _shm_resident_bytes,
            ),
        )
        if self._cache is not None:
            self._admission.add_resident_source(self._cache.memory_bytes)
        #: Circuit breaker over the process-shard lane: repeated
        #: infrastructure failures trip it and batches degrade to the
        #: dispatcher thread's in-process accelerator clone until the lane
        #: proves healthy again (half-open probe after the cooldown).
        self._breaker = CircuitBreaker(
            name=f"{name}-sharded",
            failure_threshold=breaker_failure_threshold,
            cooldown_seconds=breaker_cooldown_seconds,
        )
        #: Circuit breaker over the in-process shared-memory replay lane.
        #: Wired into the (process-wide) pool when this broker runs the shm
        #: lane in-process: worker deaths and segment-allocation failures
        #: trip it, and large-state replays degrade to the fallback
        #: engine's thread-pool sweep — identical amplitudes, no worker
        #: processes — until a half-open probe proves the pool healthy.
        self._shm_breaker = CircuitBreaker(
            name=f"{name}-shm",
            failure_threshold=breaker_failure_threshold,
            cooldown_seconds=breaker_cooldown_seconds,
        )
        self._shm_fallback_engine = None
        self._shm_pool = None
        shm_workers = int(self.backend_options.get("shm-processes", 0) or 0)
        if self._sharded is None and shm_workers > 1:
            from ..exec.shm import get_shared_state_pool
            from ..simulator.parallel_engine import ParallelSimulationEngine

            pool = get_shared_state_pool(shm_workers)
            self._shm_fallback_engine = ParallelSimulationEngine()
            pool.breaker = self._shm_breaker
            pool.fallback = self._shm_fallback_engine
            self._shm_pool = pool
        #: Precision tier every execution this broker dispatches runs at
        #: ("double" = complex128, "single" = complex64).  Semantic: it is
        #: part of the job key, so cached and freshly executed histograms
        #: always agree on it.
        self.precision = str(self.backend_options.get("precision", "double"))
        #: Simulation-method routing policy: ``auto`` lets the Clifford
        #: classifier steer eligible jobs onto the stabilizer tableau,
        #: ``statevector`` is the documented opt-out (always dense), and
        #: ``stabilizer`` forces the tableau (non-Clifford jobs then fail
        #: with the classifier's obstruction).  Validated here so a typo
        #: fails at construction, not in a dispatcher thread.
        self.method = str(self.backend_options.get("method", "auto")).strip().lower()
        if self.method not in SIMULATION_METHODS:
            raise ExecutionError(
                f"unknown simulation method {self.backend_options.get('method')!r}; "
                f"expected one of {SIMULATION_METHODS}"
            )
        if self.method == "stabilizer" and self.backend != "qpp":
            raise ExecutionError(
                f"the stabilizer method routes within the 'qpp' backend's "
                f"dispatch path, got backend {self.backend!r}"
            )
        #: Categorical method router (the tableau-vs-dense choice is not a
        #: constant-factor comparison, so an uncalibrated model is fine).
        self._cost_model = SimulationCostModel()
        self._stabilizer_backend = None
        self._state_lock = threading.Lock()
        self._started = False
        self._shut_down = False
        #: Caller-thread accelerator clone for synchronous expectation
        #: sweeps (lazily created by :meth:`_sync_backend`).
        self._sync_qpu: Accelerator | None = None

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "QuantumJobService":
        """Start the dispatcher pool (idempotent; ``submit`` also starts it)."""
        with self._state_lock:
            if self._shut_down:
                raise ExecutionError(f"service {self.name!r} has been shut down")
            if not self._started:
                self._pool.start()
                self._started = True
        return self

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting jobs; workers drain the queue, then exit.

        Exception-safe: the process-shard executor (when present) is closed
        even if draining or joining raises, so no worker process is ever
        orphaned by an error path.
        """
        with self._state_lock:
            if self._shut_down:
                return
            self._shut_down = True
            started = self._started
        try:
            self._queue.close()
            if started:
                if wait:
                    self._pool.join(timeout)
            else:
                # No worker ever ran (auto_start=False): jobs queued before
                # this shutdown would otherwise strand their clients forever.
                self._drain_and_fail(
                    ExecutionError(
                        f"service {self.name!r} was shut down before its "
                        "dispatcher pool started"
                    )
                )
        finally:
            if self._sharded is not None:
                self._sharded.close(wait=wait)
            if self._shm_pool is not None:
                # Detach this broker's breaker/fallback wiring from the
                # process-wide pool so a later owner starts from a clean
                # policy, then release the fallback engine's threads.
                if self._shm_pool.breaker is self._shm_breaker:
                    self._shm_pool.breaker = None
                if self._shm_pool.fallback is self._shm_fallback_engine:
                    self._shm_pool.fallback = None
                self._shm_pool = None
            if self._shm_fallback_engine is not None:
                self._shm_fallback_engine.close()
                self._shm_fallback_engine = None

    def __enter__(self) -> "QuantumJobService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------------------
    def submit(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> JobHandle:
        """Submit a job, blocking while the queue is full.

        ``timeout`` bounds the wait for a *queue slot* (backpressure);
        ``deadline`` bounds the *job itself* — relative seconds from now,
        after which the job resolves with
        :class:`~repro.exceptions.DeadlineExceeded` instead of a result
        (checked at dequeue, pre-compile and per-step replay boundaries, so
        even a mid-flight replay is abandoned).  ``tenant`` selects the
        per-tenant default deadline/retry policy for submissions that do
        not carry their own.  Raises :class:`ServiceOverloadedError` only
        if ``timeout`` elapses while waiting for a queue slot.
        """
        return self._submit(
            circuit,
            shots,
            priority,
            block=True,
            timeout=timeout,
            deadline=deadline,
            tenant=tenant,
        )

    def try_submit(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> JobHandle | None:
        """Non-blocking submit: ``None`` when backpressure rejects the job."""
        try:
            return self._submit(
                circuit,
                shots,
                priority,
                block=False,
                timeout=None,
                deadline=deadline,
                tenant=tenant,
            )
        except ServiceOverloadedError:
            return None

    def submit_sweep(
        self,
        circuit: CompositeInstruction,
        bindings,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> "SweepHandle":
        """Submit a parameter sweep: one parametric circuit, N bindings.

        The circuit is compiled **once** and shipped to the execution lane
        once (by content hash); each binding is evaluated by an in-place
        trig rebind of the cached parametric plan, with per-binding counts
        bit-identical to submitting the pre-bound circuits independently at
        the same seed.  Results stream through the returned
        :class:`~repro.service.sweep.SweepHandle` as bindings complete.

        ``deadline`` (or the tenant/service default) applies per binding;
        each binding carries its own cancel token, so
        ``handle.cancel_binding(i)`` abandons one row without touching the
        rest.  Bindings whose per-binding cache entry already covers
        ``shots`` resolve immediately without queueing.
        """
        if self._shut_down:
            raise ExecutionError(f"service {self.name!r} has been shut down")
        if not circuit.is_parameterized:
            raise ExecutionError(
                f"circuit {circuit.name!r} has no free parameters; "
                "use submit for pre-bound circuits"
            )
        bindings = list(bindings)
        if not bindings:
            raise ExecutionError("submit_sweep needs at least one binding")
        if deadline is not None and deadline <= 0:
            raise ExecutionError(
                f"deadline must be positive seconds from submission, got {deadline}"
            )
        if self.auto_start:
            self.start()
        resolved_shots = shots if shots is not None else get_config().shots
        deadline = self._tenant_deadline(tenant, deadline)
        canon = [canonical_binding(b) for b in bindings]
        skey = sweep_key(circuit, self.backend, self.backend_options, bindings)
        bkeys = [
            binding_key(circuit, self.backend, self.backend_options, b)
            for b in bindings
        ]
        tokens = [CancelToken(timeout=deadline) for _ in bindings]
        handle = SweepHandle(skey, canon, bkeys, resolved_shots, self.backend, tokens)
        handle._service_alive = self._can_resolve
        self._metrics.increment("submitted", len(bindings))
        self._metrics.increment("sweep_bindings", len(bindings))
        tracer = get_tracer()
        root = tracer.span(
            "sweep",
            attrs={
                "backend": self.backend,
                "shots": resolved_shots,
                "key": skey[:16],
                "bindings": len(bindings),
            },
        )
        handle._trace_span = root
        submit_wall = time.time()

        # Per-binding cache fast path: a binding whose member key is warm
        # resolves now and never fans out.
        pending: list[int] = []
        for index, bkey in enumerate(bkeys):
            entry = (
                self._cache.lookup(bkey, resolved_shots)
                if self._cache is not None
                else None
            )
            if entry is not None and entry.shots >= resolved_shots:
                counts = subsample_counts(entry.counts, resolved_shots, self._rng())
                handle._resolve(
                    index,
                    BindingResult(
                        index=index,
                        values=canon[index],
                        shots=resolved_shots,
                        key=bkey,
                        backend=entry.backend,
                        counts=counts,
                        from_cache=True,
                    ),
                )
                self._metrics.increment("cache_hits")
                self._metrics.increment("completed")
                self._metrics.increment("served_shots", resolved_shots)
                continue
            pending.append(index)
        if not pending:
            tracer.record(
                "cache-hit",
                parent=root.context(),
                start_wall=submit_wall,
                duration=max(0.0, time.time() - submit_wall),
            )
            root.set_attribute("from_cache", True)
            handle._finish_if_done()
            return handle

        # Fan-out: in sharded mode one chunk suffices (the executor fans
        # binding ranges across its shards internally); in-process mode
        # chunks across the dispatcher threads so bindings evaluate
        # concurrently on their per-thread accelerator clones.  Chunk keys
        # carry a per-submission nonce: two concurrent identical sweeps
        # must not coalesce (each chunk resolves its own handle's rows).
        if self._sharded is not None:
            n_chunks = 1
        else:
            n_chunks = max(1, min(self._pool.size, len(pending)))
        retry_policy = self._tenant_retry_policy(tenant)
        root.set_attribute("fanout", n_chunks)
        self._metrics.increment("sweep_fanout", n_chunks)
        nonce = secrets.token_hex(4)
        base, extra = divmod(len(pending), n_chunks)
        offset = 0
        chunks: list[tuple[int, ...]] = []
        for chunk_index in range(n_chunks):
            size = base + (1 if chunk_index < extra else 0)
            if size:
                chunks.append(tuple(pending[offset : offset + size]))
                offset += size
        for chunk_index, indices in enumerate(chunks):
            spec = JobSpec(
                key=f"{skey}:{nonce}:chunk:{chunk_index}",
                circuit=circuit,
                backend=self.backend,
                shots=resolved_shots,
                n_qubits=max(circuit.n_qubits, 1),
                priority=JobPriority(priority),
                options=self.backend_options,
                deadline=tokens[indices[0]].deadline,
                sweep=_SweepChunk(handle, indices),
                tenant=tenant,
                retry_policy=retry_policy,
            )
            chunk_handle = JobHandle(spec)
            chunk_handle.cancel_token = combine_tokens([tokens[i] for i in indices])
            chunk_handle._service_alive = self._can_resolve
            try:
                self._queue.put(chunk_handle, block=True, timeout=timeout)
            except ServiceOverloadedError as exc:
                # Queue full: fail this chunk's rows and every chunk not
                # yet enqueued; already-enqueued chunks keep running.
                self._metrics.increment("rejected")
                for remaining in chunks[chunk_index:]:
                    for index in remaining:
                        handle._fail(index, exc)
                        self._metrics.increment("failed")
                break
        handle._finish_if_done()
        return handle

    def expectations(
        self,
        circuit: CompositeInstruction,
        observable,
        bindings,
        *,
        tenant: str | None = None,
    ) -> list[float]:
        """Exact per-binding expectations of ``observable`` (synchronous).

        Runs on the calling thread through the compile-once sweep path —
        one plan, N in-place rebinds — fanned across the shards in
        process-shard mode.  This is the execution primitive under
        :meth:`gradient`; it bypasses the job queue because expectation
        sweeps are exact (no shots) and typically sit on an optimizer's
        critical path.
        """
        if self._shut_down:
            raise ExecutionError(f"service {self.name!r} has been shut down")
        if not circuit.is_parameterized:
            raise ExecutionError(
                f"circuit {circuit.name!r} has no free parameters; "
                "expectation sweeps need a parametric circuit"
            )
        bindings = list(bindings)
        if not bindings:
            raise ExecutionError("expectations needs at least one binding")
        chunk_threshold = self.backend_options.get("chunk-threshold")
        kwargs = dict(
            n_qubits=max(circuit.n_qubits, 1),
            optimize=bool(self.backend_options.get("optimize", True)),
            batch_diagonals=bool(self.backend_options.get("batch-diagonals", True)),
            chunk_threshold=(
                None if chunk_threshold is None else int(chunk_threshold)  # type: ignore[arg-type]
            ),
            precision=self.precision,
        )
        if self._sharded is not None:
            return self._sharded.expectation_sweep(
                circuit,
                observable,
                bindings,
                retry_policy=self._tenant_retry_policy(tenant),
                **kwargs,
            )
        return self._sync_backend().expectation_sweep(
            circuit, observable, bindings, **kwargs
        )

    def gradient(
        self,
        circuit: CompositeInstruction,
        observable,
        parameters,
        *,
        shift: float | None = None,
        tenant: str | None = None,
    ) -> np.ndarray:
        """Parameter-shift gradient evaluated as one ``2·P``-binding sweep.

        Builds the interleaved ``[θ+s·e_i, θ−s·e_i]`` binding list
        (``s = π/2`` by default — exact for parameters entering through
        Pauli rotations) and ships it as a single expectation sweep, so all
        ``2·P`` shifted circuits share one compile and evaluate
        concurrently across the shards.
        """
        params = np.asarray([float(p) for p in parameters], dtype=float)
        if params.size == 0:
            return np.zeros(0)
        s = (math.pi / 2) if shift is None else float(shift)
        shifted: list[list[float]] = []
        for i in range(params.size):
            plus = params.copy()
            minus = params.copy()
            plus[i] += s
            minus[i] -= s
            shifted.append([float(v) for v in plus])
            shifted.append([float(v) for v in minus])
        energies = self.expectations(circuit, observable, shifted, tenant=tenant)
        grad = np.zeros(params.size)
        for i in range(params.size):
            grad[i] = 0.5 * (energies[2 * i] - energies[2 * i + 1])
        return grad

    def _sync_backend(self):
        """Execution backend for caller-thread sweeps (lazily created).

        Dispatcher threads own per-thread accelerator clones; synchronous
        expectation sweeps run on the *caller's* thread, so the service
        keeps one dedicated clone for them.
        """
        with self._state_lock:
            qpu = self._sync_qpu
            if qpu is None:
                from ..runtime.service_registry import get_registry

                qpu = get_registry().get_accelerator(
                    self.backend, self.backend_options
                )
                self._sync_qpu = qpu
        backend_factory = getattr(qpu, "execution_backend", None)
        if backend_factory is None:
            raise ExecutionError(
                f"backend {self.backend!r} does not expose an execution "
                "backend; expectation sweeps need a plan-based backend"
            )
        return backend_factory()

    async def asubmit(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> JobHandle:
        """Async :meth:`submit`: awaitable without blocking the event loop.

        ``submit`` can block on backpressure, so it runs in the loop's
        default thread-pool executor.  The returned handle is itself
        awaitable (``result = await handle``), bridging the broker's
        ``concurrent.futures`` plumbing into asyncio::

            handle = await service.asubmit(circuit, shots=1024)
            result = await handle
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self.submit,
                circuit,
                shots=shots,
                priority=priority,
                timeout=timeout,
                deadline=deadline,
            ),
        )

    async def arun(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        timeout: float | None = None,
    ) -> JobResult:
        """Submit and await the result in one call (`asubmit` + ``await``)."""
        handle = await self.asubmit(circuit, shots=shots, priority=priority, timeout=timeout)
        return await handle.aresult()

    def _tenant_deadline(self, tenant: str | None, deadline: float | None) -> float | None:
        """Resolve a relative deadline: explicit > tenant default > service-wide."""
        if deadline is not None:
            return deadline
        if tenant is not None:
            defaults = self._tenant_defaults.get(tenant)
            if defaults is not None and defaults.get("deadline") is not None:
                return float(defaults["deadline"])  # type: ignore[arg-type]
        raw_deadline = self.backend_options.get("deadline-seconds")
        return None if raw_deadline is None else float(raw_deadline)  # type: ignore[arg-type]

    def _tenant_retry_policy(self, tenant: str | None) -> RetryPolicy | None:
        """The tenant's default retry policy (``None`` = service-wide policy)."""
        if tenant is None:
            return None
        defaults = self._tenant_defaults.get(tenant)
        if defaults is None:
            return None
        policy = defaults.get("retry_policy")
        return policy if isinstance(policy, RetryPolicy) else None

    def _submit(
        self,
        circuit: CompositeInstruction,
        shots: int | None,
        priority: JobPriority,
        block: bool,
        timeout: float | None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> JobHandle:
        if self._shut_down:
            raise ExecutionError(f"service {self.name!r} has been shut down")
        if circuit.is_parameterized:
            raise ExecutionError(
                f"circuit {circuit.name!r} has unbound parameters; bind before "
                "submitting (or submit the binding list via submit_sweep)"
            )
        if deadline is not None and deadline <= 0:
            raise ExecutionError(
                f"deadline must be positive seconds from submission, got {deadline}"
            )
        if self.auto_start:
            self.start()
        resolved_shots = shots if shots is not None else get_config().shots
        # Every job carries a token: the deadline rides on it, and cancel()
        # trips it even when no deadline was set.  Tenant defaults and the
        # deadline-seconds backend option provide fallbacks in that order.
        deadline = self._tenant_deadline(tenant, deadline)
        token = CancelToken(timeout=deadline)
        spec = JobSpec(
            key=job_key(circuit, self.backend, self.backend_options),
            circuit=circuit,
            backend=self.backend,
            shots=resolved_shots,
            n_qubits=max(circuit.n_qubits, 1),
            priority=JobPriority(priority),
            options=self.backend_options,
            deadline=token.deadline,
            tenant=tenant,
            retry_policy=self._tenant_retry_policy(tenant),
        )
        handle = JobHandle(spec)
        handle.cancel_token = token
        handle._service_alive = self._can_resolve
        self._metrics.increment("submitted")
        # Root span of this job's trace.  The span stays open across the
        # queue and the dispatcher thread (the handle carries it); every
        # resolution path below closes it.  A no-op span when tracing is off.
        tracer = get_tracer()
        root = tracer.span(
            "job",
            attrs={
                "backend": self.backend,
                "shots": resolved_shots,
                "key": spec.key[:16],
                "priority": spec.priority.name,
            },
        )
        handle._trace_span = root
        handle._enqueued_wall = time.time()

        # Fast path: serve entirely from the cache, no queueing at all.
        if self._cache is not None:
            entry = self._cache.lookup(spec.key, spec.shots)
            if entry is not None and entry.shots >= spec.shots:
                counts = subsample_counts(entry.counts, spec.shots, self._rng())
                handle._resolve(
                    JobResult(
                        counts=counts,
                        shots=spec.shots,
                        backend=entry.backend,
                        key=spec.key,
                        from_cache=True,
                    )
                )
                self._metrics.increment("cache_hits")
                self._metrics.increment("completed")
                self._metrics.increment("served_shots", spec.shots)
                tracer.record(
                    "cache-hit",
                    parent=root.context(),
                    start_wall=handle._enqueued_wall,
                    duration=max(0.0, time.time() - handle._enqueued_wall),
                )
                root.set_attribute("from_cache", True)
                root.finish()
                return handle
            # A partial entry stays put: the dispatcher tops it up with only
            # the missing shots when the batch reaches a worker.

        try:
            outcome = self._queue.put(handle, block=block, timeout=timeout)
        except ServiceOverloadedError:
            self._metrics.increment("rejected")
            root.mark_error("rejected: queue full")
            root.finish()
            raise
        if outcome == "coalesced":
            self._metrics.increment("coalesced")
            root.set_attribute("coalesced", True)
        return handle

    # -- batch execution (runs on dispatcher threads) -------------------------------
    def _triage(self, handle: JobHandle, where: str) -> bool:
        """Resolve a handle whose lifecycle already decided its outcome.

        Returns ``True`` when the job is still live.  Called at dequeue (so
        cancelled/expired jobs never pay for compilation or admission) and
        again per rider at reconcile (so a late result is never served past
        its deadline, and a client-side ``cancel()`` that raced the
        execution still reports as cancelled).
        """
        span = handle._trace_span
        token = handle.cancel_token
        if handle.done():
            # cancel() already failed the future client-side; account for
            # it and close out the trace.
            self._metrics.increment("cancelled")
            self._metrics.increment("failed")
            span.mark_error(f"cancelled {where}")
            span.finish()
            return False
        if token is None:
            return True
        if token.cancelled:
            handle._fail(JobCancelled(f"job was cancelled {where}"))
            self._metrics.increment("cancelled")
            self._metrics.increment("failed")
            span.mark_error(f"cancelled {where}")
            span.finish()
            return False
        if token.expired():
            handle._fail(
                DeadlineExceeded(
                    f"job deadline passed {where} "
                    f"(deadline={token.deadline:.3f}, now={time.time():.3f})"
                )
            )
            self._metrics.increment("deadline_exceeded")
            self._metrics.increment("failed")
            span.mark_error(f"deadline passed {where}")
            span.finish()
            return False
        return True

    def _classify_failure(self, error: BaseException) -> str | None:
        """The lifecycle counter a batch-level failure increments (or None)."""
        if isinstance(error, JobCancelled):
            return "cancelled"
        if isinstance(error, DeadlineExceeded):
            return "deadline_exceeded"
        from ..exceptions import AdmissionRejected

        if isinstance(error, AdmissionRejected):
            return "admission_rejected"
        return None

    # -- circuit-class routing -------------------------------------------------------
    def _stabilizer(self):
        """The broker-owned stabilizer backend (lazily created, stateless)."""
        with self._state_lock:
            backend = self._stabilizer_backend
            if backend is None:
                from ..exec.stabilizer import StabilizerBackend

                backend = self._stabilizer_backend = StabilizerBackend()
        return backend

    def _method_for(self, spec: JobSpec) -> str:
        """Simulation method for one bound-circuit batch.

        Only the qpp dispatch path routes (the density/noisy path has its
        own physics; a noisy channel is not Clifford evolution).  Under
        ``auto`` the cached classifier verdict decides; an explicit
        ``stabilizer`` request on a non-Clifford circuit raises here —
        inside the batch's failure envelope, so every rider sees the typed
        error instead of a hang.
        """
        if self.backend != "qpp" or self.method == "statevector":
            return "statevector"
        classification = classify_clifford(spec.circuit)
        return self._cost_model.choose_backend(classification, self.method)

    def _sweep_method(self, spec: JobSpec, bindings) -> str:
        """Simulation method for one sweep chunk.

        The parametric template cannot be classified — the binding decides
        whether an ``RZ(θ)`` is Clifford — so each bound form is classified
        and the tableau is chosen only when *every* binding in the chunk is
        Clifford (a mixed sweep stays dense: per-binding lane splits would
        break the one-compile-one-lane contract sweeps advertise).
        """
        if self.backend != "qpp" or self.method == "statevector":
            return "statevector"
        for binding in bindings:
            bound = spec.circuit.bind(binding) if spec.circuit.is_parameterized else spec.circuit
            classification = classify_clifford(bound)
            if not classification.is_clifford:
                if self.method == "stabilizer":
                    raise ExecutionError(
                        f"method 'stabilizer' was requested but binding "
                        f"{canonical_binding(binding)!r} is not Clifford: "
                        f"{classification.reason}"
                    )
                return "statevector"
        return "stabilizer"

    def _process_batch(self, batch: PendingBatch, qpu: Accelerator) -> None:
        if batch.spec.sweep is not None:
            # Sweep chunks never coalesce (unique per-chunk keys), so the
            # batch is exactly one chunk spec.
            self._process_sweep_chunk(batch.spec, qpu)
            return
        spec = batch.spec
        tracer = get_tracer()
        live = [h for h in batch.handles if self._triage(h, "while queued")]
        if not live:
            return
        # The batch leader's root span hosts the execution subtree; riders'
        # roots close with just the queue-wait/outcome attributes.  The
        # queue-wait phase can only be measured retroactively, at dequeue.
        leader = live[0]
        ctx = leader._trace_span.context()
        if ctx is not None:
            tracer.record(
                "queue-wait",
                parent=ctx,
                start_wall=leader._enqueued_wall,
                duration=max(0.0, time.time() - leader._enqueued_wall),
            )
        # One token for the whole batch: keep executing while *any* rider
        # still wants the result (latest deadline wins, cancelled only when
        # all riders cancel); each rider re-triages against its own token
        # at reconcile.
        token = combine_tokens(
            [h.cancel_token if h.cancel_token is not None else CancelToken() for h in live]
        )
        try:
            target_shots = batch.target_shots
            method = self._method_for(spec)
            requested_bytes = estimate_job_bytes(
                spec.n_qubits, target_shots, precision=self.precision, method=method
            )
            with tracer.span(
                "admission",
                parent=ctx,
                attrs={"requested_bytes": requested_bytes, "method": method},
            ):
                ticket = self._admission.admit(
                    requested_bytes, deadline=token.deadline
                )
            with ticket:
                with tracer.activate(ctx), cancel_scope(token):
                    full_counts, execution_seconds, from_cache = self._counts_for(
                        spec, target_shots, qpu, method=method
                    )
            if from_cache:
                # Warmed between submit and dispatch (a racing worker or an
                # earlier batch): these jobs did no backend work either, so
                # they count as cache hits alongside the submit-time ones.
                self._metrics.increment("cache_hits", len(live))
            total = sum(full_counts.values())
            coalesced = len(batch) > 1
            resolved: list[JobHandle] = []
            with tracer.span(
                "reconcile", parent=ctx, attrs={"riders": len(live)}
            ):
                for handle in live:
                    if not self._triage(handle, "before its result was served"):
                        continue
                    counts = (
                        subsample_counts(full_counts, handle.shots, self._rng())
                        if handle.shots < total
                        else dict(full_counts)
                    )
                    handle._resolve(
                        JobResult(
                            counts=counts,
                            shots=handle.shots,
                            backend=spec.backend,
                            key=spec.key,
                            from_cache=from_cache,
                            coalesced=coalesced,
                            execution_seconds=execution_seconds,
                        )
                    )
                    resolved.append(handle)
                    self._metrics.increment("completed")
                    self._metrics.increment("served_shots", handle.shots)
            for handle in resolved:
                span = handle._trace_span
                span.set_attribute("coalesced", coalesced)
                span.set_attribute("from_cache", from_cache)
                span.finish()
        except BaseException as exc:  # resolve every rider, never hang a client
            counter = self._classify_failure(exc)
            for handle in live:
                if handle.done():
                    # A client-side cancel() raced the failure; its future
                    # already holds JobCancelled — just close the trace.
                    self._metrics.increment("cancelled")
                    span = handle._trace_span
                    span.mark_error("cancelled mid-execution")
                    span.finish()
                    self._metrics.increment("failed")
                    continue
                handle._fail(exc)
                if counter is not None:
                    self._metrics.increment(counter)
                span = handle._trace_span
                span.mark_error(f"{type(exc).__name__}: {exc}")
                span.finish()
                self._metrics.increment("failed")

    def _sweep_triage(self, handle: SweepHandle, index: int, where: str) -> bool:
        """Per-binding :meth:`_triage`: resolve a binding whose lifecycle
        already decided its outcome.  Returns ``True`` when still live."""
        if handle._futures[index].done():
            # cancel_binding() already failed the row client-side.
            self._metrics.increment("cancelled")
            self._metrics.increment("failed")
            return False
        token = handle.tokens[index]
        if token.cancelled:
            handle._fail(
                index, JobCancelled(f"sweep binding {index} was cancelled {where}")
            )
            self._metrics.increment("cancelled")
            self._metrics.increment("failed")
            return False
        if token.expired():
            handle._fail(
                index,
                DeadlineExceeded(
                    f"sweep binding {index} deadline passed {where} "
                    f"(deadline={token.deadline:.3f}, now={time.time():.3f})"
                ),
            )
            self._metrics.increment("deadline_exceeded")
            self._metrics.increment("failed")
            return False
        return True

    def _process_sweep_chunk(self, spec: JobSpec, qpu: Accelerator) -> None:
        """Execute one fan-out chunk of a sweep and resolve its bindings.

        The chunk compiles nothing the other chunks of the same sweep don't
        share: every lane keys its plan cache by the *parametric* circuit's
        content hash, so concurrent chunks reuse one compiled plan and
        differ only in their in-place rebinds.
        """
        chunk: _SweepChunk = spec.sweep  # type: ignore[assignment]
        handle = chunk.handle
        tracer = get_tracer()
        ctx = handle._trace_span.context()
        try:
            live = [
                i
                for i in chunk.indices
                if self._sweep_triage(handle, i, "while queued")
            ]
            if live:
                bindings = [handle.bindings[i] for i in live]
                # Keep executing while *any* live binding still wants its
                # row; each binding re-triages against its own token below.
                token = combine_tokens([handle.tokens[i] for i in live])
                width = (
                    min(self.processes, len(live))
                    if self._sharded is not None
                    else 1
                )
                method = self._sweep_method(spec, bindings)
                requested_bytes = estimate_job_bytes(
                    spec.n_qubits, spec.shots, precision=self.precision, method=method
                ) * max(1, width)
                with tracer.span(
                    "admission",
                    parent=ctx,
                    attrs={
                        "requested_bytes": requested_bytes,
                        "bindings": len(live),
                        "method": method,
                    },
                ):
                    ticket = self._admission.admit(
                        requested_bytes, deadline=token.deadline
                    )
                with ticket:
                    with tracer.activate(ctx), cancel_scope(token):
                        started_wall = time.time()
                        results = self._execute_sweep_chunk(
                            spec, bindings, qpu, method=method
                        )
                with tracer.span(
                    "reconcile", parent=ctx, attrs={"riders": len(live)}
                ):
                    for result, index in zip(results, live):
                        counts = dict(result.counts)
                        if self._cache is not None:
                            self._cache.store(
                                handle.binding_keys[index], counts, spec.backend
                            )
                        self._metrics.increment("executions")
                        self._metrics.increment("executed_shots", spec.shots)
                        self._metrics.observe_latency(spec.backend, result.seconds)
                        if not self._sweep_triage(
                            handle, index, "before its result was served"
                        ):
                            continue
                        handle._resolve(
                            index,
                            BindingResult(
                                index=index,
                                values=handle.bindings[index],
                                shots=spec.shots,
                                key=handle.binding_keys[index],
                                backend=spec.backend,
                                counts=counts,
                                execution_seconds=result.seconds,
                            ),
                        )
                        self._metrics.increment("completed")
                        self._metrics.increment("served_shots", spec.shots)
                        tracer.record(
                            "sweep-binding",
                            parent=ctx,
                            start_wall=started_wall,
                            duration=result.seconds,
                            attrs={"binding": index},
                        )
        except BaseException as exc:  # resolve every row, never hang a client
            counter = self._classify_failure(exc)
            for index in chunk.indices:
                if handle._futures[index].done():
                    continue
                handle._fail(index, exc)
                if counter is not None:
                    self._metrics.increment(counter)
                self._metrics.increment("failed")
        finally:
            handle._finish_if_done()

    def _execute_sweep_chunk(
        self, spec: JobSpec, bindings, qpu: Accelerator, method: str = "statevector"
    ):
        """Compile-once execution of one sweep chunk's bindings.

        Mirrors :meth:`_execute_missing`'s lane selection: the shard lane
        (which fans binding ranges across worker processes) sits behind the
        same circuit breaker and degrades to the dispatcher thread's
        in-process clone on infrastructure failures; all-Clifford chunks
        skip both lanes for the tableau.  Returns the per-binding
        :class:`~repro.exec.backend.ExecutionResult` list in binding order.
        """
        tracer = get_tracer()
        if method == "stabilizer":
            with tracer.span("stabilizer-sweep", attrs={"bindings": len(bindings)}):
                results = self._stabilizer().execute_sweep(
                    spec.circuit,
                    bindings,
                    spec.shots,
                    n_qubits=spec.n_qubits,
                    seed=get_config().seed,
                )
            self._metrics.increment("stabilizer_executions", len(results))
            return results
        chunk_threshold = self.backend_options.get("chunk-threshold")
        kwargs = dict(
            n_qubits=spec.n_qubits,
            seed=get_config().seed,
            optimize=bool(self.backend_options.get("optimize", True)),
            batch_diagonals=bool(self.backend_options.get("batch-diagonals", True)),
            chunk_threshold=(
                None if chunk_threshold is None else int(chunk_threshold)  # type: ignore[arg-type]
            ),
            precision=self.precision,
        )
        if self._sharded is not None:
            if self._breaker.allow():
                try:
                    with tracer.span(
                        "sweep-shard-dispatch", attrs={"bindings": len(bindings)}
                    ):
                        results = self._sharded.execute_sweep(
                            spec.circuit,
                            bindings,
                            spec.shots,
                            retry_policy=spec.retry_policy,  # type: ignore[arg-type]
                            **kwargs,
                        )
                except Exception as exc:
                    if not is_infrastructure_failure(exc):
                        raise
                    self._breaker.record_failure()
                    self._metrics.increment("breaker_fallbacks")
                    with tracer.span("breaker-fallback") as fallback_span:
                        fallback_span.mark_error(f"{type(exc).__name__}: {exc}")
                else:
                    self._breaker.record_success()
                    self._metrics.increment("sharded_executions")
                    self._metrics.increment(
                        "sharded_plan_hits",
                        sum(1 for r in results if r.plan_cached),
                    )
                    return results
            else:
                self._metrics.increment("breaker_fallbacks")
        backend_factory = getattr(qpu, "execution_backend", None)
        if backend_factory is None:
            raise ExecutionError(
                f"backend {spec.backend!r} does not expose an execution "
                "backend; sweeps need a plan-based backend"
            )
        with tracer.span("sweep-execute", attrs={"bindings": len(bindings)}):
            return backend_factory().execute_sweep(spec.circuit, bindings, spec.shots, **kwargs)

    def _counts_for(
        self,
        spec: JobSpec,
        target_shots: int,
        qpu: Accelerator,
        method: str = "statevector",
    ) -> tuple[dict[str, int], float, bool]:
        """Obtain a histogram with at least ``target_shots`` observations.

        Serves from the cache when possible, otherwise executes only the
        missing shots and merges them in.  Loops because the cache entry can
        be *evicted between the peek and the merge* under churn — the merged
        result is re-checked so a client can never receive a short
        histogram.  Returns (counts, execution seconds, served-purely-from-
        cache).
        """
        tracer = get_tracer()
        execution_seconds = 0.0
        executed_any = False
        while True:
            with tracer.span("cache-lookup") as lookup:
                entry = self._cache.peek(spec.key) if self._cache is not None else None
                cached_shots = entry.shots if entry is not None else 0
                lookup.set_attribute("cached_shots", cached_shots)
                lookup.set_attribute("hit", cached_shots >= target_shots)
            if entry is not None and cached_shots >= target_shots:
                return entry.counts, execution_seconds, not executed_any
            missing = target_shots - cached_shots
            fresh, elapsed = self._execute_missing(spec, missing, qpu, method=method)
            execution_seconds += elapsed
            executed_any = True
            self._metrics.increment("executions")
            self._metrics.increment("executed_shots", missing)
            self._metrics.observe_latency(spec.backend, elapsed)
            if self._cache is None:
                return fresh, execution_seconds, False
            merged = self._cache.top_up(spec.key, fresh, spec.backend)
            if merged.shots >= target_shots:
                return merged.counts, execution_seconds, False
            # The base entry vanished mid-merge; run the remainder.

    def _execute_missing(
        self,
        spec: JobSpec,
        shots: int,
        qpu: Accelerator,
        method: str = "statevector",
    ) -> tuple[dict[str, int], float]:
        """One backend execution of ``shots`` shots for ``spec``.

        ``method="stabilizer"`` (the classifier's verdict, resolved before
        admission) bypasses both the shard lane and the accelerator clone:
        the tableau needs no plan cache, no amplitude buffers, and no
        per-qubit size ceiling — that bypass is exactly what lets a
        500-qubit Clifford job through a dispatch path whose dense
        accelerator refuses anything past ~26 qubits.

        In-process mode runs on the dispatcher thread's own accelerator
        clone.  Process-shard mode routes the batch to the shard that owns
        ``spec.key`` — the hash affinity that keeps each worker process
        replaying from a plan cache already warm with its keys — honouring
        the service's ``optimize`` backend option (it is part of the job
        key, so sharded and in-process results must agree on it).  The
        ``use-plans: False`` A/B option has no sharded form and is rejected
        with ``processes`` at construction.

        The shard lane sits behind a circuit breaker: infrastructure
        failures (dead workers, exhausted retry budgets) count against it,
        and once tripped, batches degrade to the dispatcher thread's
        in-process clone — identical results, reduced throughput — until a
        half-open probe proves the lane healthy again.  Job-shaped failures
        (cancellation, deadlines, bad circuits) re-raise untouched: they
        would fail identically on any lane.
        """
        tracer = get_tracer()
        if method == "stabilizer":
            with tracer.span("stabilizer-execute", attrs={"shots": shots}):
                result = self._stabilizer().execute(
                    spec.circuit,
                    shots,
                    n_qubits=spec.n_qubits,
                    seed=get_config().seed,
                )
            self._metrics.increment("stabilizer_executions")
            return dict(result.counts), result.seconds
        if self._sharded is not None:
            if self._breaker.allow():
                chunk_threshold = self.backend_options.get("chunk-threshold")
                try:
                    with tracer.span("shard-dispatch", attrs={"shots": shots}):
                        result = self._sharded.execute_for_key(
                            spec.key,
                            spec.circuit,
                            shots,
                            n_qubits=spec.n_qubits,
                            seed=get_config().seed,
                            optimize=bool(self.backend_options.get("optimize", True)),
                            batch_diagonals=bool(self.backend_options.get("batch-diagonals", True)),
                            chunk_threshold=None if chunk_threshold is None else int(chunk_threshold),  # type: ignore[arg-type]
                            precision=self.precision,
                            retry_policy=spec.retry_policy,  # type: ignore[arg-type]
                        )
                except Exception as exc:
                    if not is_infrastructure_failure(exc):
                        raise
                    # Lane ill-health, not a bad job: feed the breaker and
                    # degrade this batch to the in-process clone below.
                    self._breaker.record_failure()
                    self._metrics.increment("breaker_fallbacks")
                    with tracer.span("breaker-fallback") as fallback_span:
                        fallback_span.mark_error(f"{type(exc).__name__}: {exc}")
                else:
                    self._breaker.record_success()
                    self._metrics.increment("sharded_executions")
                    if result.plan_cached:
                        self._metrics.increment("sharded_plan_hits")
                    return dict(result.counts), result.seconds
            else:
                # Breaker open: skip the shard lane without even trying.
                self._metrics.increment("breaker_fallbacks")
        buffer = AcceleratorBuffer(spec.n_qubits)
        started = time.perf_counter()
        with tracer.span("backend-execute", attrs={"shots": shots}):
            qpu.execute(buffer, spec.circuit, shots=shots)
        elapsed = time.perf_counter() - started
        return buffer.get_measurement_counts(), elapsed

    def _worker_init_failed(self, error: BaseException) -> None:
        """Dispatcher callback: a worker died in its ``initialize()`` call.

        Once *every* worker is gone nothing will ever drain the queue, so
        instead of letting clients block forever on their handles, close the
        queue and fail every pending job with the initialization error.
        """
        if not self._pool.all_workers_failed_init():
            return  # degraded but alive: the surviving workers keep serving
        self._queue.close()
        failure = ExecutionError(
            f"service {self.name!r}: all dispatcher workers failed to "
            f"initialize backend {self.backend!r}: {error}"
        )
        failure.__cause__ = error
        self._drain_and_fail(failure)

    def _drain_and_fail(self, failure: BaseException) -> None:
        """Fail every batch still in the (closed) queue with ``failure``."""
        while True:
            batch = self._queue.get(timeout=0)
            if batch is None:
                return
            sweep = batch.spec.sweep
            if sweep is not None:
                for index in sweep.indices:
                    sweep.handle._fail(index, failure)
                sweep.handle._finish_if_done()
                self._metrics.increment("failed", len(sweep.indices))
                continue
            for handle in batch.handles:
                handle._fail(failure)
            self._metrics.increment("failed", len(batch))

    def _can_resolve(self) -> bool:
        """Whether some dispatcher can still resolve a pending handle.

        Consulted by unbounded ``JobHandle.result()`` waits: while workers
        are alive (including the shutdown drain) the wait continues; once
        the pool is gone — or the service was shut down before ever
        starting — the client gets ``TimeoutError`` instead of a hang.
        """
        if self._started:
            return self._pool.alive_count() > 0
        return not self._shut_down

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(get_config().seed)

    # -- introspection ----------------------------------------------------------------
    def metrics(self) -> MetricsSnapshot:
        """Consistent snapshot of throughput, queue, cache and latency stats."""
        from ..exec.shm import shm_health
        from ..simulator.cost_model import calibration_refinement_count
        from ..simulator.plan_cache import get_plan_cache

        # Aggregated over this process's open shm pools (the in-process
        # LocalBackend lane).  Shard-hosted pools live inside shard worker
        # processes and report through their own process, not here.
        shm = shm_health()
        admission = self._admission.snapshot()
        return self._metrics.snapshot(
            queue_depth=self._queue.depth(),
            active_workers=self._pool.alive_count(),
            cache=self._cache.stats() if self._cache is not None else None,
            # The dispatcher's accelerator clones all consult the shared
            # content-hash-keyed plan cache: repeat jobs (cache-missed or
            # top-ups) skip circuit compilation entirely.  In process-shard
            # mode compilation happens in the *worker* processes instead —
            # these parent-side counters stay flat there; watch
            # ``sharded_plan_hits`` for the per-worker cache behaviour.
            plan_cache=get_plan_cache().stats(),
            process_shards=self.processes if self._sharded is not None else 0,
            shard_respawns=(
                self._sharded.total_retries if self._sharded is not None else 0
            ),
            shard_queue_depths=(
                tuple(self._sharded.shard_queue_depths())
                if self._sharded is not None
                else ()
            ),
            shm_workers=shm["workers"],
            shm_respawns=shm["respawns"],
            shm_barrier_aborts=shm["barrier_aborts"],
            shm_resident_bytes=shm["resident_bytes"],
            shm_resident_states=shm["resident_states"],
            calibration_refinements=calibration_refinement_count(),
            breaker_state=self._breaker.state,
            breaker_trips=self._breaker.trips,
            shm_breaker_state=self._shm_breaker.state,
            shm_breaker_trips=self._shm_breaker.trips,
            admission_budget_bytes=admission["budget_bytes"],
            admission_inflight_bytes=admission["inflight_bytes"],
            admission_inflight_tickets=admission["inflight_tickets"],
            admission_resident_bytes=admission["resident_bytes"],
            admission_admitted=admission["admitted"],
            admission_rejected_tickets=admission["rejected"],
            admission_waited=admission["waited"],
        )

    @property
    def cache(self) -> ResultCache | None:
        return self._cache

    @property
    def breaker(self) -> CircuitBreaker:
        """The circuit breaker guarding the process-shard lane."""
        return self._breaker

    @property
    def shm_breaker(self) -> CircuitBreaker:
        """The circuit breaker guarding the in-process shm replay lane."""
        return self._shm_breaker

    @property
    def admission(self) -> AdmissionController:
        """The memory-budget admission controller (no-op when unbudgeted)."""
        return self._admission

    @property
    def sharded_executor(self):
        """The broker-owned :class:`ShardedExecutor` (``None`` in-process)."""
        return self._sharded

    def queue_depth(self) -> int:
        return self._queue.depth()

    def __repr__(self) -> str:
        return (
            f"QuantumJobService(name={self.name!r}, backend={self.backend!r}, "
            f"workers={self._pool.size}, queue_depth={self._queue.depth()})"
        )
