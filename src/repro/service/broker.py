"""QuantumJobService: the multi-tenant job broker over the thread-safe runtime.

The broker turns the paper's thread-safe runtime (per-thread accelerator
clones, locked registry and allocation) into an actual service: many client
threads submit circuit-execution jobs and get futures back, while a fixed
dispatcher pool drains a bounded priority queue.  Three mechanisms keep the
backend work well below one execution per request:

1. **Result cache** — jobs are keyed by a content hash of (circuit, backend,
   config); a repeat submission is answered from the cache, subsampled down
   to the requested shot count, without touching a simulator.  Requests for
   *more* shots than cached trigger a top-up run of only the missing shots.
2. **Batch coalescing** — identical jobs that are concurrently pending fuse
   into one :class:`~repro.service.batching.PendingBatch`; a single backend
   execution at the largest requested shot count resolves every rider.
3. **Backpressure** — the queue bounds pending client jobs; ``submit``
   blocks for a slot, ``try_submit`` returns ``None`` immediately (and the
   rejection is counted in the metrics snapshot).

With ``processes=N`` the broker adds a fourth mechanism, **process
sharding**: dispatcher threads stop simulating in-process and instead hand
each cache-missed batch to the shard of a
:class:`~repro.exec.sharded.ShardedExecutor` that owns the batch's job key
(hash affinity), so every shard's worker process keeps re-receiving — and
replaying from its warm plan cache — the circuits it has already compiled.
This is the configuration that scales the broker past the GIL.

Typical use::

    with QuantumJobService(backend="qpp", workers=4, processes=4) as service:
        handles = [service.submit(circuit, shots=1024) for _ in range(16)]
        histograms = [handle.counts() for handle in handles]
        print(service.metrics().cache_hit_rate)

Async clients bridge the same futures into an event loop::

    handle = await service.asubmit(circuit, shots=1024)
    result = await handle
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from typing import Mapping

import numpy as np

from ..config import get_config
from ..exceptions import (
    ExecutionError,
    ServiceNotFoundError,
    ServiceOverloadedError,
)
from ..ir.composite import CompositeInstruction
from ..obs.trace import get_tracer
from ..runtime.accelerator import Accelerator
from ..runtime.buffer import AcceleratorBuffer
from .batching import BatchingJobQueue, PendingBatch
from .cache import ResultCache, subsample_counts
from .dispatcher import DispatcherPool
from .job import JobHandle, JobPriority, JobResult, JobSpec
from .keys import job_key
from .metrics import MetricsSnapshot, ServiceMetrics

__all__ = ["QuantumJobService"]


class QuantumJobService:
    """High-throughput broker dispatching quantum jobs to a worker pool."""

    def __init__(
        self,
        backend: str | None = None,
        workers: int = 4,
        max_pending: int = 64,
        cache_capacity: int = 256,
        enable_cache: bool = True,
        backend_options: Mapping[str, object] | None = None,
        name: str = "job-broker",
        auto_start: bool = True,
        processes: int = 0,
    ):
        self.name = name
        #: When False, jobs queue up until an explicit :meth:`start` — useful
        #: for deterministic batching tests and delayed-start deployments.
        self.auto_start = auto_start
        self.backend = (backend or get_config().default_accelerator).lower()
        # Fail at construction, not in a worker thread where clients would
        # only ever observe result() timeouts.
        from ..runtime.service_registry import get_registry

        if not get_registry().has_service("accelerator", self.backend):
            raise ServiceNotFoundError(
                f"no accelerator {self.backend!r} registered; "
                f"known: {get_registry().registered_names('accelerator')}"
            )
        self.backend_options = dict(backend_options or {})
        #: Process shards (0/1 = classic in-process dispatch).
        self.processes = int(processes or 0)
        self._sharded = None
        if self.processes > 1:
            if self.backend != "qpp":
                raise ExecutionError(
                    f"process sharding replays compiled plans and requires the "
                    f"'qpp' backend, got {self.backend!r}"
                )
            if not bool(self.backend_options.get("use-plans", True)):
                # Plan replay is the only form shards execute; forking
                # workers that could never be used would be pure waste.
                raise ExecutionError(
                    "process sharding requires plan execution; drop "
                    "processes= or remove 'use-plans': False"
                )
            from ..exec.sharded import ShardedExecutor

            # "shm-processes" lets each shard borrow a shared-memory pool
            # for super-threshold single-state replays (the ≥20-qubit lane);
            # in in-process mode the same option flows to the accelerator
            # clones through backend_options instead.
            self._sharded = ShardedExecutor(
                self.processes,
                name=f"{name}-shard",
                shm_processes=int(self.backend_options.get("shm-processes", 0) or 0),
            )
        self._queue = BatchingJobQueue(max_pending=max_pending)
        self._cache: ResultCache | None = (
            ResultCache(cache_capacity) if enable_cache else None
        )
        self._metrics = ServiceMetrics()
        self._pool = DispatcherPool(
            self._queue,
            self._process_batch,
            workers=workers,
            backend=self.backend,
            backend_options=self.backend_options,
            name=name,
            on_init_failure=self._worker_init_failed,
        )
        self._state_lock = threading.Lock()
        self._started = False
        self._shut_down = False

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "QuantumJobService":
        """Start the dispatcher pool (idempotent; ``submit`` also starts it)."""
        with self._state_lock:
            if self._shut_down:
                raise ExecutionError(f"service {self.name!r} has been shut down")
            if not self._started:
                self._pool.start()
                self._started = True
        return self

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting jobs; workers drain the queue, then exit.

        Exception-safe: the process-shard executor (when present) is closed
        even if draining or joining raises, so no worker process is ever
        orphaned by an error path.
        """
        with self._state_lock:
            if self._shut_down:
                return
            self._shut_down = True
            started = self._started
        try:
            self._queue.close()
            if started:
                if wait:
                    self._pool.join(timeout)
            else:
                # No worker ever ran (auto_start=False): jobs queued before
                # this shutdown would otherwise strand their clients forever.
                self._drain_and_fail(
                    ExecutionError(
                        f"service {self.name!r} was shut down before its "
                        "dispatcher pool started"
                    )
                )
        finally:
            if self._sharded is not None:
                self._sharded.close(wait=wait)

    def __enter__(self) -> "QuantumJobService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------------------
    def submit(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        timeout: float | None = None,
    ) -> JobHandle:
        """Submit a job, blocking while the queue is full.

        Raises :class:`ServiceOverloadedError` only if ``timeout`` elapses
        while waiting for a queue slot.
        """
        return self._submit(circuit, shots, priority, block=True, timeout=timeout)

    def try_submit(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
    ) -> JobHandle | None:
        """Non-blocking submit: ``None`` when backpressure rejects the job."""
        try:
            return self._submit(circuit, shots, priority, block=False, timeout=None)
        except ServiceOverloadedError:
            return None

    async def asubmit(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        timeout: float | None = None,
    ) -> JobHandle:
        """Async :meth:`submit`: awaitable without blocking the event loop.

        ``submit`` can block on backpressure, so it runs in the loop's
        default thread-pool executor.  The returned handle is itself
        awaitable (``result = await handle``), bridging the broker's
        ``concurrent.futures`` plumbing into asyncio::

            handle = await service.asubmit(circuit, shots=1024)
            result = await handle
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self.submit, circuit, shots=shots, priority=priority, timeout=timeout
            ),
        )

    async def arun(
        self,
        circuit: CompositeInstruction,
        shots: int | None = None,
        priority: JobPriority = JobPriority.NORMAL,
        timeout: float | None = None,
    ) -> JobResult:
        """Submit and await the result in one call (`asubmit` + ``await``)."""
        handle = await self.asubmit(circuit, shots=shots, priority=priority, timeout=timeout)
        return await handle.aresult()

    def _submit(
        self,
        circuit: CompositeInstruction,
        shots: int | None,
        priority: JobPriority,
        block: bool,
        timeout: float | None,
    ) -> JobHandle:
        if self._shut_down:
            raise ExecutionError(f"service {self.name!r} has been shut down")
        if circuit.is_parameterized:
            raise ExecutionError(
                f"circuit {circuit.name!r} has unbound parameters; bind before submitting"
            )
        if self.auto_start:
            self.start()
        resolved_shots = shots if shots is not None else get_config().shots
        spec = JobSpec(
            key=job_key(circuit, self.backend, self.backend_options),
            circuit=circuit,
            backend=self.backend,
            shots=resolved_shots,
            n_qubits=max(circuit.n_qubits, 1),
            priority=JobPriority(priority),
            options=self.backend_options,
        )
        handle = JobHandle(spec)
        self._metrics.increment("submitted")
        # Root span of this job's trace.  The span stays open across the
        # queue and the dispatcher thread (the handle carries it); every
        # resolution path below closes it.  A no-op span when tracing is off.
        tracer = get_tracer()
        root = tracer.span(
            "job",
            attrs={
                "backend": self.backend,
                "shots": resolved_shots,
                "key": spec.key[:16],
                "priority": spec.priority.name,
            },
        )
        handle._trace_span = root
        handle._enqueued_wall = time.time()

        # Fast path: serve entirely from the cache, no queueing at all.
        if self._cache is not None:
            entry = self._cache.lookup(spec.key, spec.shots)
            if entry is not None and entry.shots >= spec.shots:
                counts = subsample_counts(entry.counts, spec.shots, self._rng())
                handle._resolve(
                    JobResult(
                        counts=counts,
                        shots=spec.shots,
                        backend=entry.backend,
                        key=spec.key,
                        from_cache=True,
                    )
                )
                self._metrics.increment("cache_hits")
                self._metrics.increment("completed")
                self._metrics.increment("served_shots", spec.shots)
                tracer.record(
                    "cache-hit",
                    parent=root.context(),
                    start_wall=handle._enqueued_wall,
                    duration=max(0.0, time.time() - handle._enqueued_wall),
                )
                root.set_attribute("from_cache", True)
                root.finish()
                return handle
            # A partial entry stays put: the dispatcher tops it up with only
            # the missing shots when the batch reaches a worker.

        try:
            outcome = self._queue.put(handle, block=block, timeout=timeout)
        except ServiceOverloadedError:
            self._metrics.increment("rejected")
            root.mark_error("rejected: queue full")
            root.finish()
            raise
        if outcome == "coalesced":
            self._metrics.increment("coalesced")
            root.set_attribute("coalesced", True)
        return handle

    # -- batch execution (runs on dispatcher threads) -------------------------------
    def _process_batch(self, batch: PendingBatch, qpu: Accelerator) -> None:
        spec = batch.spec
        tracer = get_tracer()
        # The batch leader's root span hosts the execution subtree; riders'
        # roots close with just the queue-wait/outcome attributes.  The
        # queue-wait phase can only be measured retroactively, at dequeue.
        leader = batch.handles[0]
        ctx = leader._trace_span.context()
        if ctx is not None:
            tracer.record(
                "queue-wait",
                parent=ctx,
                start_wall=leader._enqueued_wall,
                duration=max(0.0, time.time() - leader._enqueued_wall),
            )
        try:
            with tracer.activate(ctx):
                target_shots = batch.target_shots
                full_counts, execution_seconds, from_cache = self._counts_for(
                    spec, target_shots, qpu
                )
            if from_cache:
                # Warmed between submit and dispatch (a racing worker or an
                # earlier batch): these jobs did no backend work either, so
                # they count as cache hits alongside the submit-time ones.
                self._metrics.increment("cache_hits", len(batch))
            total = sum(full_counts.values())
            coalesced = len(batch) > 1
            with tracer.span(
                "reconcile", parent=ctx, attrs={"riders": len(batch)}
            ):
                for handle in batch.handles:
                    counts = (
                        subsample_counts(full_counts, handle.shots, self._rng())
                        if handle.shots < total
                        else dict(full_counts)
                    )
                    handle._resolve(
                        JobResult(
                            counts=counts,
                            shots=handle.shots,
                            backend=spec.backend,
                            key=spec.key,
                            from_cache=from_cache,
                            coalesced=coalesced,
                            execution_seconds=execution_seconds,
                        )
                    )
                    self._metrics.increment("completed")
                    self._metrics.increment("served_shots", handle.shots)
            for handle in batch.handles:
                span = handle._trace_span
                span.set_attribute("coalesced", coalesced)
                span.set_attribute("from_cache", from_cache)
                span.finish()
        except BaseException as exc:  # resolve every rider, never hang a client
            for handle in batch.handles:
                handle._fail(exc)
                span = handle._trace_span
                span.mark_error(f"{type(exc).__name__}: {exc}")
                span.finish()
            self._metrics.increment("failed", len(batch))

    def _counts_for(
        self, spec: JobSpec, target_shots: int, qpu: Accelerator
    ) -> tuple[dict[str, int], float, bool]:
        """Obtain a histogram with at least ``target_shots`` observations.

        Serves from the cache when possible, otherwise executes only the
        missing shots and merges them in.  Loops because the cache entry can
        be *evicted between the peek and the merge* under churn — the merged
        result is re-checked so a client can never receive a short
        histogram.  Returns (counts, execution seconds, served-purely-from-
        cache).
        """
        tracer = get_tracer()
        execution_seconds = 0.0
        executed_any = False
        while True:
            with tracer.span("cache-lookup") as lookup:
                entry = self._cache.peek(spec.key) if self._cache is not None else None
                cached_shots = entry.shots if entry is not None else 0
                lookup.set_attribute("cached_shots", cached_shots)
                lookup.set_attribute("hit", cached_shots >= target_shots)
            if entry is not None and cached_shots >= target_shots:
                return entry.counts, execution_seconds, not executed_any
            missing = target_shots - cached_shots
            fresh, elapsed = self._execute_missing(spec, missing, qpu)
            execution_seconds += elapsed
            executed_any = True
            self._metrics.increment("executions")
            self._metrics.increment("executed_shots", missing)
            self._metrics.observe_latency(spec.backend, elapsed)
            if self._cache is None:
                return fresh, execution_seconds, False
            merged = self._cache.top_up(spec.key, fresh, spec.backend)
            if merged.shots >= target_shots:
                return merged.counts, execution_seconds, False
            # The base entry vanished mid-merge; run the remainder.

    def _execute_missing(
        self, spec: JobSpec, shots: int, qpu: Accelerator
    ) -> tuple[dict[str, int], float]:
        """One backend execution of ``shots`` shots for ``spec``.

        In-process mode runs on the dispatcher thread's own accelerator
        clone.  Process-shard mode routes the batch to the shard that owns
        ``spec.key`` — the hash affinity that keeps each worker process
        replaying from a plan cache already warm with its keys — honouring
        the service's ``optimize`` backend option (it is part of the job
        key, so sharded and in-process results must agree on it).  The
        ``use-plans: False`` A/B option has no sharded form and is rejected
        with ``processes`` at construction.
        """
        tracer = get_tracer()
        if self._sharded is not None:
            chunk_threshold = self.backend_options.get("chunk-threshold")
            with tracer.span("shard-dispatch", attrs={"shots": shots}):
                result = self._sharded.execute_for_key(
                    spec.key,
                    spec.circuit,
                    shots,
                    n_qubits=spec.n_qubits,
                    seed=get_config().seed,
                    optimize=bool(self.backend_options.get("optimize", True)),
                    batch_diagonals=bool(self.backend_options.get("batch-diagonals", True)),
                    chunk_threshold=None if chunk_threshold is None else int(chunk_threshold),  # type: ignore[arg-type]
                )
            self._metrics.increment("sharded_executions")
            if result.plan_cached:
                self._metrics.increment("sharded_plan_hits")
            return dict(result.counts), result.seconds
        buffer = AcceleratorBuffer(spec.n_qubits)
        started = time.perf_counter()
        with tracer.span("backend-execute", attrs={"shots": shots}):
            qpu.execute(buffer, spec.circuit, shots=shots)
        elapsed = time.perf_counter() - started
        return buffer.get_measurement_counts(), elapsed

    def _worker_init_failed(self, error: BaseException) -> None:
        """Dispatcher callback: a worker died in its ``initialize()`` call.

        Once *every* worker is gone nothing will ever drain the queue, so
        instead of letting clients block forever on their handles, close the
        queue and fail every pending job with the initialization error.
        """
        if not self._pool.all_workers_failed_init():
            return  # degraded but alive: the surviving workers keep serving
        self._queue.close()
        failure = ExecutionError(
            f"service {self.name!r}: all dispatcher workers failed to "
            f"initialize backend {self.backend!r}: {error}"
        )
        failure.__cause__ = error
        self._drain_and_fail(failure)

    def _drain_and_fail(self, failure: BaseException) -> None:
        """Fail every batch still in the (closed) queue with ``failure``."""
        while True:
            batch = self._queue.get(timeout=0)
            if batch is None:
                return
            for handle in batch.handles:
                handle._fail(failure)
            self._metrics.increment("failed", len(batch))

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(get_config().seed)

    # -- introspection ----------------------------------------------------------------
    def metrics(self) -> MetricsSnapshot:
        """Consistent snapshot of throughput, queue, cache and latency stats."""
        from ..exec.shm import shm_health
        from ..simulator.plan_cache import get_plan_cache

        # Aggregated over this process's open shm pools (the in-process
        # LocalBackend lane).  Shard-hosted pools live inside shard worker
        # processes and report through their own process, not here.
        shm = shm_health()
        return self._metrics.snapshot(
            queue_depth=self._queue.depth(),
            active_workers=self._pool.alive_count(),
            cache=self._cache.stats() if self._cache is not None else None,
            # The dispatcher's accelerator clones all consult the shared
            # content-hash-keyed plan cache: repeat jobs (cache-missed or
            # top-ups) skip circuit compilation entirely.  In process-shard
            # mode compilation happens in the *worker* processes instead —
            # these parent-side counters stay flat there; watch
            # ``sharded_plan_hits`` for the per-worker cache behaviour.
            plan_cache=get_plan_cache().stats(),
            process_shards=self.processes if self._sharded is not None else 0,
            shard_respawns=(
                self._sharded.total_retries if self._sharded is not None else 0
            ),
            shard_queue_depths=(
                tuple(self._sharded.shard_queue_depths())
                if self._sharded is not None
                else ()
            ),
            shm_workers=shm["workers"],
            shm_respawns=shm["respawns"],
            shm_barrier_aborts=shm["barrier_aborts"],
            shm_resident_bytes=shm["resident_bytes"],
        )

    @property
    def cache(self) -> ResultCache | None:
        return self._cache

    @property
    def sharded_executor(self):
        """The broker-owned :class:`ShardedExecutor` (``None`` in-process)."""
        return self._sharded

    def queue_depth(self) -> int:
        return self._queue.depth()

    def __repr__(self) -> str:
        return (
            f"QuantumJobService(name={self.name!r}, backend={self.backend!r}, "
            f"workers={self._pool.size}, queue_depth={self._queue.depth()})"
        )
