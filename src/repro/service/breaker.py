"""Lane circuit breakers: stop sending traffic into a failing execution lane.

A :class:`CircuitBreaker` guards one execution lane (the sharded process
pool, the shared-memory pool).  While the lane is healthy the breaker is
*closed* and traffic flows.  After ``failure_threshold`` consecutive
infrastructure failures the breaker *opens*: callers get ``allow() ==
False`` and route the work to a degraded-but-correct fallback (the
in-process thread lane) instead of hammering a lane that is busy dying —
every replay is deterministic, so the fallback produces bit-identical
results, just slower.  After ``cooldown_seconds`` the breaker *half-opens*
and admits a single probe; one success closes it again, one failure
re-opens it for another cooldown.

Only *infrastructure* failures (see
:func:`repro.exec.retry.is_infrastructure_failure`) should be recorded —
a breaker must not trip because clients submit circuits that fail to
compile or deadlines that expire.  That classification is the caller's
job; the breaker just counts.

The clock is injectable so tests can step through open → half-open
transitions without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker"]

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    Thread-safe: the broker's dispatcher threads consult one breaker per
    lane concurrently.  ``allow()`` claims the half-open probe slot
    atomically so exactly one thread probes a recovering lane while the
    rest keep using the fallback.
    """

    def __init__(
        self,
        name: str = "lane",
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.time,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be at least 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._trips = 0

    # -- gate ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the caller may send work to the guarded lane right now.

        In the open state this flips to half-open once the cooldown has
        elapsed and grants the probe slot to the first caller; everyone
        else is refused until the probe reports back.
        """
        with self._lock:
            if self._state == _CLOSED:
                return True
            if self._state == _OPEN:
                if self._clock() - self._opened_at < self.cooldown_seconds:
                    return False
                self._state = _HALF_OPEN
                self._probe_in_flight = False
            # Half-open: admit exactly one probe.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    # -- outcomes --------------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._state = _CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == _HALF_OPEN:
                # The probe failed: straight back to open for a new cooldown.
                self._trip()
            elif (
                self._state == _CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = _OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self._trips += 1

    # -- introspection ---------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, re-evaluating an elapsed cooldown as half-open."""
        with self._lock:
            if (
                self._state == _OPEN
                and self._clock() - self._opened_at >= self.cooldown_seconds
            ):
                return _HALF_OPEN
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def snapshot(self) -> dict:
        state = self.state
        with self._lock:
            return {
                "name": self.name,
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "trips": self._trips,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
