"""Canonical job keys: content hashes identifying equivalent executions.

Two job submissions are *equivalent* — and may therefore share one cache
entry or one batched backend execution — when they run the same circuit on
the same backend under the same execution-relevant configuration.  The key
deliberately excludes the requested shot count: a cached 4096-shot histogram
can serve a 256-shot request by subsampling, and a 8192-shot request by a
top-up run, so shots are reconciled per request rather than baked into the
identity (see :mod:`repro.service.cache`).

The circuit portion of the key is a hash over the canonical JSON form
produced by :mod:`repro.ir.serialization`, with the circuit *name* removed:
``bell`` and ``bell_copy`` containing identical instructions are the same
work.  The configuration portion fingerprints the backend name plus whatever
options the broker passes to the backend (noise model parameters, simulator
thread count is excluded — it changes speed, not distributions).
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from ..ir.composite import CompositeInstruction
from ..ir.serialization import circuit_content_hash

__all__ = [
    "job_key",
    "circuit_content_hash",
    "config_fingerprint",
    "sweep_key",
    "binding_key",
    "canonical_binding",
]

#: Backend options that do not affect measurement distributions and must not
#: fragment the cache (they tune performance, not physics).  ``processes``
#: selects the process-sharded execution backend; its reductions are
#: deterministic, so it is a routing knob, not part of the result identity.
#: ``chunk-threshold`` gates chunk-parallel plan replay and
#: ``shm-processes`` moves that replay onto shared-memory worker processes
#: (both bitwise identical to serial replay); ``batch-diagonals`` collapses
#: diagonal runs at compile time (reassociates floating-point products —
#: ulp-level amplitude shifts, identical distributions).  All of them stay
#: out of the job identity.  Consequence: the result cache may serve a
#: batched-plan histogram to a ``batch-diagonals: False`` submission;
#: callers who need bit-exact gate-by-gate reproduction (not just
#: distributional identity) should disable the result cache rather than
#: rely on this option fragmenting it.
#:
#: The job-lifecycle knobs (``deadline-seconds``, ``memory-budget-bytes``,
#: ``admission-wait-seconds``, ``breaker-failure-threshold``,
#: ``breaker-cooldown-seconds``, ``retry-max-attempts``) are likewise
#: non-semantic: they decide *whether and when* a result arrives — a job
#: may fail with DeadlineExceeded or AdmissionRejected under one setting
#: and succeed under another — but never change the histogram a successful
#: job returns, so a result produced under a tight deadline is perfectly
#: reusable by a submission with a loose one.  ``adaptive-lane`` only picks
#: which execution lane replays the plan — every lane is bit-identical at a
#: given precision — so it too stays out of the identity.
#:
#: ``"precision"`` is deliberately **not** listed: the complex64 tier
#: changes the evolved amplitudes (within the documented fidelity bound)
#: and therefore the sampled distribution, so it is semantic — a
#: ``precision: "single"`` submission must never be served a complex128
#: histogram or vice versa.
#:
#: ``"method"`` (``auto`` / ``statevector`` / ``stabilizer``) is handled
#: specially in :func:`config_fingerprint` rather than listed here.  An
#: *explicit* method is semantic: forcing the tableau or the dense lane
#: pins the sampling law (the tableau draws its randomness from GF(2)
#: affine forms, the statevector from a multinomial over amplitudes — same
#: distribution, different per-seed streams), so an explicit choice must
#: not share cache entries with the other lane.  The default ``auto`` is
#: *non-semantic*: it is the broker's routing decision, and the whole
#: point of automatic Clifford routing is that callers who did not ask for
#: a method get the fast path without their job identity moving.
_NON_SEMANTIC_OPTIONS = frozenset(
    {
        "threads",
        "latency-seconds",
        "processes",
        "shm-processes",
        "shm-states",
        "batch-diagonals",
        "chunk-threshold",
        "adaptive-lane",
        "deadline-seconds",
        "memory-budget-bytes",
        "admission-wait-seconds",
        "breaker-failure-threshold",
        "breaker-cooldown-seconds",
        "retry-max-attempts",
    }
)


def _canonical_json(payload: object) -> str:
    """Serialize ``payload`` deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)


# circuit_content_hash is re-exported from repro.ir.serialization: the job
# broker's result cache and the simulator's execution-plan cache must agree
# on one content identity, so the canonical hash lives with the IR.


def config_fingerprint(
    backend: str, options: Mapping[str, object] | None = None
) -> str:
    """Fingerprint of the execution environment a result depends on."""
    semantic = {
        key: value
        for key, value in (options or {}).items()
        if key not in _NON_SEMANTIC_OPTIONS
    }
    # The default method ("auto") is a routing decision, not an identity
    # (see the module docstring above); explicit methods stay semantic.
    method = semantic.get("method")
    if method is not None and str(method).strip().lower() == "auto":
        semantic = {key: value for key, value in semantic.items() if key != "method"}
    payload = {"backend": backend.lower(), "options": semantic}
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def job_key(
    circuit: CompositeInstruction,
    backend: str,
    options: Mapping[str, object] | None = None,
) -> str:
    """Canonical key for (circuit content, backend, config) — shots excluded."""
    combined = circuit_content_hash(circuit) + ":" + config_fingerprint(backend, options)
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()


# -- sweep keys ---------------------------------------------------------------------
#
# A parameter sweep is identified by (circuit content, backend config,
# binding list).  The *binding list* is semantic: two sweeps over the same
# ansatz with different angle sets — or the same angles in a different
# order — produce different result tables, so the bindings (values and
# order, after canonicalisation) hash into the sweep key.  What is
# deliberately NOT in the key is everything about *how* the fan-out runs:
# the fan-out width, the binding-range chunking, which lane (threads / shm
# / shards) evaluates each range, and the multi-state shm residency count
# are all routing decisions — every lane is bit-identical per binding at a
# given precision — so a sweep keeps one identity whether it runs on one
# worker or thirty-two.  Shots stay out for the same reconciliation reason
# as ``job_key``.
#
# Each binding additionally gets a *member* key via :func:`binding_key`,
# which is exactly the identity an equivalent independent submission of the
# pre-bound circuit would occupy in spirit: (circuit, config, one binding).
# Member keys are what the result cache stores sweep histograms under, so a
# later sweep — or a plain submit of the same ansatz at the same angles
# via a sweep — can reuse per-binding results even when the surrounding
# sweep differs.


def canonical_binding(binding) -> object:
    """Canonical JSON-able form of one parameter binding.

    Mappings normalise to name-sorted ``{name: float}`` dicts; positional
    sequences to ``[float, ...]`` lists.  A mapping and the positional
    sequence it implies are *not* identified — name-order resolution lives
    in the IR's ``bind``, and conflating them here would require importing
    that resolution into the key.
    """
    if isinstance(binding, Mapping):
        return {str(name): float(value) for name, value in sorted(binding.items())}
    return [float(value) for value in binding]


def sweep_key(
    circuit: CompositeInstruction,
    backend: str,
    options: Mapping[str, object] | None = None,
    bindings=(),
) -> str:
    """Canonical key for a parameter sweep (binding list is semantic)."""
    combined = (
        circuit_content_hash(circuit)
        + ":"
        + config_fingerprint(backend, options)
        + ":sweep:"
        + _canonical_json([canonical_binding(b) for b in bindings])
    )
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()


def binding_key(
    circuit: CompositeInstruction,
    backend: str,
    options: Mapping[str, object] | None = None,
    binding=(),
) -> str:
    """Cache identity of one binding of a parametric circuit.

    Independent of the sweep it arrived in (grouping and fan-out width are
    routing, not identity), so per-binding histograms are reusable across
    differently-shaped sweeps of the same ansatz.
    """
    combined = (
        circuit_content_hash(circuit)
        + ":"
        + config_fingerprint(backend, options)
        + ":binding:"
        + _canonical_json(canonical_binding(binding))
    )
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()
