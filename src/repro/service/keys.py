"""Canonical job keys: content hashes identifying equivalent executions.

Two job submissions are *equivalent* — and may therefore share one cache
entry or one batched backend execution — when they run the same circuit on
the same backend under the same execution-relevant configuration.  The key
deliberately excludes the requested shot count: a cached 4096-shot histogram
can serve a 256-shot request by subsampling, and a 8192-shot request by a
top-up run, so shots are reconciled per request rather than baked into the
identity (see :mod:`repro.service.cache`).

The circuit portion of the key is a hash over the canonical JSON form
produced by :mod:`repro.ir.serialization`, with the circuit *name* removed:
``bell`` and ``bell_copy`` containing identical instructions are the same
work.  The configuration portion fingerprints the backend name plus whatever
options the broker passes to the backend (noise model parameters, simulator
thread count is excluded — it changes speed, not distributions).
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from ..ir.composite import CompositeInstruction
from ..ir.serialization import circuit_content_hash

__all__ = ["job_key", "circuit_content_hash", "config_fingerprint"]

#: Backend options that do not affect measurement distributions and must not
#: fragment the cache (they tune performance, not physics).  ``processes``
#: selects the process-sharded execution backend; its reductions are
#: deterministic, so it is a routing knob, not part of the result identity.
#: ``chunk-threshold`` gates chunk-parallel plan replay and
#: ``shm-processes`` moves that replay onto shared-memory worker processes
#: (both bitwise identical to serial replay); ``batch-diagonals`` collapses
#: diagonal runs at compile time (reassociates floating-point products —
#: ulp-level amplitude shifts, identical distributions).  All of them stay
#: out of the job identity.  Consequence: the result cache may serve a
#: batched-plan histogram to a ``batch-diagonals: False`` submission;
#: callers who need bit-exact gate-by-gate reproduction (not just
#: distributional identity) should disable the result cache rather than
#: rely on this option fragmenting it.
#:
#: The job-lifecycle knobs (``deadline-seconds``, ``memory-budget-bytes``,
#: ``admission-wait-seconds``, ``breaker-failure-threshold``,
#: ``breaker-cooldown-seconds``, ``retry-max-attempts``) are likewise
#: non-semantic: they decide *whether and when* a result arrives — a job
#: may fail with DeadlineExceeded or AdmissionRejected under one setting
#: and succeed under another — but never change the histogram a successful
#: job returns, so a result produced under a tight deadline is perfectly
#: reusable by a submission with a loose one.  ``adaptive-lane`` only picks
#: which execution lane replays the plan — every lane is bit-identical at a
#: given precision — so it too stays out of the identity.
#:
#: ``"precision"`` is deliberately **not** listed: the complex64 tier
#: changes the evolved amplitudes (within the documented fidelity bound)
#: and therefore the sampled distribution, so it is semantic — a
#: ``precision: "single"`` submission must never be served a complex128
#: histogram or vice versa.
_NON_SEMANTIC_OPTIONS = frozenset(
    {
        "threads",
        "latency-seconds",
        "processes",
        "shm-processes",
        "batch-diagonals",
        "chunk-threshold",
        "adaptive-lane",
        "deadline-seconds",
        "memory-budget-bytes",
        "admission-wait-seconds",
        "breaker-failure-threshold",
        "breaker-cooldown-seconds",
        "retry-max-attempts",
    }
)


def _canonical_json(payload: object) -> str:
    """Serialize ``payload`` deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)


# circuit_content_hash is re-exported from repro.ir.serialization: the job
# broker's result cache and the simulator's execution-plan cache must agree
# on one content identity, so the canonical hash lives with the IR.


def config_fingerprint(
    backend: str, options: Mapping[str, object] | None = None
) -> str:
    """Fingerprint of the execution environment a result depends on."""
    semantic = {
        key: value
        for key, value in (options or {}).items()
        if key not in _NON_SEMANTIC_OPTIONS
    }
    payload = {"backend": backend.lower(), "options": semantic}
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def job_key(
    circuit: CompositeInstruction,
    backend: str,
    options: Mapping[str, object] | None = None,
) -> str:
    """Canonical key for (circuit content, backend, config) — shots excluded."""
    combined = circuit_content_hash(circuit) + ":" + config_fingerprint(backend, options)
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()
