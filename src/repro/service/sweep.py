"""Parameter-sweep handles: per-binding futures, streaming, cancellation.

A *sweep* is one client request covering N parameter bindings of a single
parametric circuit.  The broker compiles the circuit once, fans the
bindings out across its execution lanes, and resolves each binding
independently — so results stream back as they land instead of gating on
the slowest binding.  :class:`SweepHandle` is the client's view: iterate it
(or call :meth:`SweepHandle.as_completed`) to consume results in completion
order, call :meth:`SweepHandle.result` for the full table in binding order,
and cancel the whole sweep or any single binding without touching the rest.
"""

from __future__ import annotations

import concurrent.futures
import queue as queue_module
import threading
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from ..cancellation import CancelToken
from ..exceptions import JobCancelled
from ..obs.trace import NOOP_SPAN

__all__ = ["BindingResult", "SweepHandle"]


@dataclass(frozen=True)
class BindingResult:
    """Outcome of one binding of a sweep (one row of the result table)."""

    #: Position of this binding in the submitted binding list.
    index: int
    #: The canonical binding (name-sorted mapping or positional tuple).
    values: object
    #: Shots this binding was sampled at (0 for expectation-only sweeps).
    shots: int
    #: Per-binding cache key the histogram was filed under.
    key: str
    #: Backend that produced (or originally produced) the counts.
    backend: str = ""
    #: Measurement histogram (``None`` for expectation-only sweeps).
    counts: Mapping[str, int] | None = None
    #: Exact expectation value (``None`` for sampling sweeps).
    expectation: float | None = None
    #: True when this binding was served from the result cache.
    from_cache: bool = False
    #: Wall-clock seconds of the execution serving this binding.
    execution_seconds: float = 0.0


class SweepHandle:
    """Future-like handle over every binding of one submitted sweep."""

    def __init__(
        self,
        sweep_key: str,
        bindings: Sequence[object],
        binding_keys: Sequence[str],
        shots: int,
        backend: str,
        tokens: Sequence[CancelToken],
    ):
        self.sweep_key = sweep_key
        #: Canonical bindings, in submission order.
        self.bindings = tuple(bindings)
        #: Per-binding cache keys, aligned with :attr:`bindings`.
        self.binding_keys = tuple(binding_keys)
        self.shots = shots
        self.backend = backend
        #: Per-binding cancellation tokens (cancel one binding, not all).
        self.tokens = tuple(tokens)
        self._futures: list["concurrent.futures.Future[BindingResult]"] = [
            concurrent.futures.Future() for _ in self.bindings
        ]
        #: Completion-order stream: indices are pushed as bindings resolve.
        self._completed: "queue_module.Queue[int]" = queue_module.Queue()
        for index, future in enumerate(self._futures):
            future.add_done_callback(
                lambda _f, i=index: self._completed.put(i)
            )
        #: Root span of the sweep's trace (broker-set).
        self._trace_span = NOOP_SPAN
        self._finish_lock = threading.Lock()
        self._finished = False
        #: Broker-set liveness probe (see :class:`JobHandle`).
        self._service_alive: Callable[[], bool] | None = None

    # -- metadata ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.bindings)

    @property
    def trace_id(self) -> str | None:
        ctx = self._trace_span.context()
        return ctx.trace_id if ctx is not None else None

    # -- lifecycle --------------------------------------------------------------
    def cancel(self) -> None:
        """Cancel every still-pending binding (resolved ones keep results)."""
        for index in range(len(self.bindings)):
            self.cancel_binding(index)

    def cancel_binding(self, index: int) -> bool:
        """Cancel one binding; the rest of the sweep keeps running.

        Immediate for the client (the binding's slot resolves with
        :class:`~repro.exceptions.JobCancelled`), cooperative for the
        backend: an in-flight evaluation of this binding is abandoned at
        its next per-binding boundary.  Returns ``True`` when the
        cancellation took effect.
        """
        self.tokens[index].cancel()
        future = self._futures[index]
        if future.done():
            return isinstance(future.exception(), JobCancelled)
        self._fail(index, JobCancelled("sweep binding was cancelled by the client"))
        return isinstance(future.exception(), JobCancelled)

    def done(self) -> bool:
        return all(future.done() for future in self._futures)

    # -- results ----------------------------------------------------------------
    def binding_result(self, index: int, timeout: float | None = None) -> BindingResult:
        """Block for one binding's result (raises its error if it failed)."""
        return self._futures[index].result(timeout)

    def result(self, timeout: float | None = None) -> list[BindingResult]:
        """The full result table in binding order.

        ``timeout`` bounds the wait for *all* bindings together.  The first
        failed binding's error is raised (use :meth:`as_completed` to
        consume partial successes around failures).
        """
        done, not_done = concurrent.futures.wait(self._futures, timeout=timeout)
        if not_done:
            raise TimeoutError(
                f"sweep {self.sweep_key[:12]}: {len(not_done)} of "
                f"{len(self._futures)} bindings still pending"
            )
        return [future.result() for future in self._futures]

    def as_completed(
        self, timeout: float | None = None
    ) -> Iterator[BindingResult]:
        """Yield binding results as they land (completion order).

        A failed binding raises its error when reached; resume iterating to
        keep consuming the remaining bindings.  ``timeout`` bounds each
        *wait between* results, not the whole sweep.
        """
        for _ in range(len(self._futures)):
            try:
                index = self._completed.get(timeout=timeout)
            except queue_module.Empty:
                raise TimeoutError(
                    f"sweep {self.sweep_key[:12]}: no binding completed "
                    f"within {timeout}s"
                ) from None
            yield self._futures[index].result()

    def __iter__(self) -> Iterator[BindingResult]:
        return self.as_completed()

    def counts(self, timeout: float | None = None) -> list[dict[str, int]]:
        """Convenience: block and return every binding's histogram in order."""
        return [dict(r.counts or {}) for r in self.result(timeout)]

    def expectations(self, timeout: float | None = None) -> list[float]:
        """Convenience: every binding's expectation value in order."""
        return [
            float(r.expectation) if r.expectation is not None else float("nan")
            for r in self.result(timeout)
        ]

    # -- resolution (broker-side) ------------------------------------------------
    def _resolve(self, index: int, result: BindingResult) -> None:
        future = self._futures[index]
        if not future.done():
            future.set_result(result)

    def _fail(self, index: int, error: BaseException) -> None:
        future = self._futures[index]
        if not future.done():
            future.set_exception(error)

    def _finish_if_done(self) -> None:
        """Close the sweep's root trace span once every binding resolved."""
        if not self.done():
            return
        with self._finish_lock:
            if self._finished:
                return
            self._finished = True
        failures = sum(
            1 for f in self._futures if f.exception() is not None
        )
        self._trace_span.set_attribute("failed_bindings", failures)
        self._trace_span.finish()

    def __repr__(self) -> str:
        resolved = sum(1 for f in self._futures if f.done())
        return (
            f"SweepHandle(key={self.sweep_key[:12]}…, "
            f"bindings={len(self.bindings)}, resolved={resolved})"
        )


@dataclass(frozen=True)
class _SweepChunk:
    """Broker-internal payload: which sweep bindings one queued chunk covers."""

    handle: SweepHandle
    indices: tuple[int, ...]
