"""Memory-budget admission control for the job broker.

A 28-qubit statevector is 4 GiB; two replayed concurrently ping-pong into
16 GiB of live amplitude buffers and the host OOM-kills the service.  The
:class:`AdmissionController` prevents that by making memory an explicit,
accounted resource: before a batch executes, the broker asks for a ticket
sized to the job's working set, and the controller grants it only when the
total — in-flight tickets plus everything already resident (compiled
plans, cached histograms, shared-memory segments) — fits the budget.

Jobs that do not fit *right now* wait on a condition variable for running
tickets to release (queueing, not failing); jobs that can *never* fit —
the request alone exceeds the whole budget — are rejected immediately with
:class:`~repro.exceptions.AdmissionRejected`, and so are jobs whose wait
exceeds ``max_wait`` or whose deadline would expire while queued.

The resident terms are measured by walking the actual structures
(``ExecutionPlan.memory_bytes``, ``ResultCache.memory_bytes``, the shm
pool's segment sizes) rather than trusting counters to stay in sync —
the walk is cheap at admission frequency and cannot drift.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..exceptions import AdmissionRejected

__all__ = ["AdmissionController", "AdmissionTicket", "estimate_job_bytes"]

#: Per-amplitude byte cost of a replay (state + equal-size scratch).
_AMPLITUDE_ITEMSIZE = {"double": 16, "single": 8}


def estimate_job_bytes(
    n_qubits: int,
    shots: int = 0,
    precision: str = "double",
    *,
    method: str = "statevector",
) -> int:
    """Working-set estimate for one job of ``n_qubits``.

    For dense methods, dominated by the amplitude buffers: ``2**n``
    amplitudes in the job's precision tier (complex128 by default,
    complex64 for ``"single"``), doubled for the ping-pong scratch.
    Histogram output is bounded by ``shots`` distinct bitstrings and is
    usually noise, but it is counted so a million-shot job on a wide
    register is not free.

    When the classifier routed the job to the stabilizer tableau
    (``method="stabilizer"``), the working set is the O(n²) binary tableau
    instead — this is what lets a 500-qubit Clifford job through a budget
    that would reject its 2**500-amplitude dense estimate outright.
    """
    if str(method).strip().lower() == "stabilizer":
        from ..exec.stabilizer import estimate_tableau_bytes

        return estimate_tableau_bytes(max(0, int(n_qubits)), int(shots))
    itemsize = _AMPLITUDE_ITEMSIZE.get(str(precision), 16)
    amplitudes = 1 << max(0, int(n_qubits))
    return amplitudes * itemsize * 2 + int(shots) * 8


class AdmissionTicket:
    """A granted reservation; release it when the job finishes (idempotent)."""

    __slots__ = ("requested_bytes", "_controller", "_released")

    def __init__(self, controller: "AdmissionController", requested_bytes: int):
        self._controller = controller
        self.requested_bytes = requested_bytes
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self.requested_bytes)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class _NullTicket(AdmissionTicket):
    """Granted by an unbudgeted controller: release is a no-op."""

    def __init__(self):  # pylint: disable=super-init-not-called
        self.requested_bytes = 0
        self._released = True

    def release(self) -> None:
        pass


_NULL_TICKET = _NullTicket()


class AdmissionController:
    """Grant/queue/reject jobs against a byte budget.

    ``resident_sources`` are zero-argument callables returning currently
    resident bytes outside the controller's own tickets (plan cache,
    result cache, shm segments); they are polled at admission time.  A
    ``budget_bytes`` of ``None`` disables accounting entirely — ``admit``
    returns a shared no-op ticket and never blocks.
    """

    def __init__(
        self,
        budget_bytes: int | None = None,
        *,
        max_wait: float = 5.0,
        resident_sources: tuple[Callable[[], int], ...] = (),
    ):
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError(
                f"budget_bytes must be positive (or None to disable), "
                f"got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self.max_wait = float(max_wait)
        self._sources = tuple(resident_sources)
        self._lock = threading.Lock()
        self._granted = threading.Condition(self._lock)
        self._inflight_bytes = 0
        self._inflight_tickets = 0
        self._admitted = 0
        self._rejected = 0
        self._waited = 0

    def add_resident_source(self, source: Callable[[], int]) -> None:
        with self._lock:
            self._sources += (source,)

    # -- accounting ------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Bytes currently resident outside in-flight tickets."""
        total = 0
        for source in self._sources:
            try:
                total += int(source())
            except Exception:
                # A dying source (e.g. a pool mid-teardown) must not wedge
                # admission; its bytes are about to be freed anyway.
                continue
        return total

    def used_bytes(self) -> int:
        with self._lock:
            inflight = self._inflight_bytes
        return inflight + self.resident_bytes()

    # -- the gate --------------------------------------------------------------
    def admit(
        self, requested_bytes: int, *, deadline: float | None = None
    ) -> AdmissionTicket:
        """Block until ``requested_bytes`` fits, then return the ticket.

        Raises :class:`AdmissionRejected` when the request exceeds the
        entire budget (hopeless — queueing cannot help), or when the wait
        outlasts ``max_wait`` or the job's own ``deadline`` (absolute
        wall clock).  An unbudgeted controller admits immediately.
        """
        budget = self.budget_bytes
        if budget is None:
            return _NULL_TICKET
        requested = max(0, int(requested_bytes))
        if requested > budget:
            with self._lock:
                self._rejected += 1
            raise AdmissionRejected(
                f"job needs {requested} bytes but the entire budget is "
                f"{budget} bytes; shrink the job or raise the budget",
                requested_bytes=requested,
                budget_bytes=budget,
                used_bytes=self.used_bytes(),
            )
        give_up = time.time() + self.max_wait
        if deadline is not None:
            give_up = min(give_up, deadline)
        waited = False
        while True:
            resident = self.resident_bytes()  # polled outside the lock
            with self._lock:
                used = self._inflight_bytes + resident
                if used + requested <= budget:
                    self._inflight_bytes += requested
                    self._inflight_tickets += 1
                    self._admitted += 1
                    if waited:
                        self._waited += 1
                    return AdmissionTicket(self, requested)
                remaining = give_up - time.time()
                if remaining <= 0:
                    self._rejected += 1
                    raise AdmissionRejected(
                        f"job needs {requested} bytes but {used} of "
                        f"{budget} budgeted bytes are in use and none "
                        f"released within the admission wait",
                        requested_bytes=requested,
                        budget_bytes=budget,
                        used_bytes=used,
                    )
                waited = True
                # Wake on ticket release, or after a slice to re-poll the
                # resident sources (they shrink without notifying us).
                self._granted.wait(min(remaining, 0.05))

    def _release(self, requested_bytes: int) -> None:
        with self._lock:
            self._inflight_bytes = max(0, self._inflight_bytes - requested_bytes)
            self._inflight_tickets = max(0, self._inflight_tickets - 1)
            self._granted.notify_all()

    # -- introspection ---------------------------------------------------------
    def snapshot(self) -> dict:
        resident = self.resident_bytes() if self.budget_bytes is not None else 0
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "inflight_bytes": self._inflight_bytes,
                "inflight_tickets": self._inflight_tickets,
                "resident_bytes": resident,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "waited": self._waited,
            }
