"""repro.service — a high-throughput quantum job broker.

This subsystem layers a multi-tenant execution service on top of the
thread-safe runtime the paper contributes.  Client threads submit circuit
jobs to a :class:`QuantumJobService` and receive :class:`JobHandle` futures;
a dispatcher pool of worker threads — each holding its own accelerator clone
through the QPUManager — drains a bounded priority queue.  Identical jobs
are deduplicated twice: concurrently-pending ones coalesce into a single
backend execution (:mod:`repro.service.batching`), and repeated ones are
served from a bounded LRU result cache with shot-count reconciliation
(:mod:`repro.service.cache`).  :mod:`repro.service.metrics` exposes
throughput, queue-depth, cache and latency counters.

The fault-tolerant lifecycle tier rides on the same broker: per-job
deadlines and cooperative cancellation (:mod:`repro.cancellation`),
memory-budget admission control (:mod:`repro.service.admission`), and a
circuit breaker degrading the process-shard lane to in-process execution
under repeated infrastructure failures (:mod:`repro.service.breaker`).

Parameter sweeps are first-class jobs (:mod:`repro.service.sweep`):
``submit_sweep`` compiles one parametric circuit once and fans N bindings
out across the execution lanes with in-place rebinds, streaming per-binding
results through a :class:`SweepHandle`; ``gradient`` ships parameter-shift
gradients as one ``2·P``-binding expectation sweep.
"""

from .admission import AdmissionController, AdmissionTicket, estimate_job_bytes
from .batching import BatchingJobQueue, PendingBatch
from .breaker import CircuitBreaker
from .broker import QuantumJobService
from .cache import CachedResult, CacheStats, ResultCache, subsample_counts
from .dispatcher import DispatcherPool
from .job import JobHandle, JobPriority, JobResult, JobSpec
from .keys import (
    binding_key,
    canonical_binding,
    circuit_content_hash,
    config_fingerprint,
    job_key,
    sweep_key,
)
from .metrics import BackendLatency, MetricsSnapshot, ServiceMetrics
from .sweep import BindingResult, SweepHandle

__all__ = [
    "QuantumJobService",
    "AdmissionController",
    "AdmissionTicket",
    "estimate_job_bytes",
    "CircuitBreaker",
    "JobHandle",
    "JobPriority",
    "JobResult",
    "JobSpec",
    "BatchingJobQueue",
    "PendingBatch",
    "DispatcherPool",
    "ResultCache",
    "CachedResult",
    "CacheStats",
    "subsample_counts",
    "job_key",
    "sweep_key",
    "binding_key",
    "canonical_binding",
    "SweepHandle",
    "BindingResult",
    "circuit_content_hash",
    "config_fingerprint",
    "ServiceMetrics",
    "MetricsSnapshot",
    "BackendLatency",
]
