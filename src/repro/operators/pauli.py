"""Pauli terms and weighted Pauli-sum operators.

A :class:`PauliTerm` is ``coefficient * P_{q0} P_{q1} ...`` where each ``P``
is X, Y or Z acting on a distinct qubit; a :class:`PauliOperator` is a sum of
terms.  Multiplication uses the single-qubit Pauli group algebra (tracking
the ±1, ±i phases), so arbitrary products of the factory operators
:func:`X`, :func:`Y`, :func:`Z` and scalars compose correctly.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..exceptions import IRError
from ..ir.composite import CompositeInstruction
from ..ir.gates import H as HGate
from ..ir.gates import RX as RXGate

__all__ = ["PauliTerm", "PauliOperator", "I", "X", "Y", "Z"]

_PAULI_LABELS = ("I", "X", "Y", "Z")

#: Single-qubit Pauli multiplication table: (a, b) -> (phase, result).
_MULTIPLICATION: dict[tuple[str, str], tuple[complex, str]] = {
    ("I", "I"): (1, "I"),
    ("I", "X"): (1, "X"),
    ("I", "Y"): (1, "Y"),
    ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"),
    ("Y", "I"): (1, "Y"),
    ("Z", "I"): (1, "Z"),
    ("X", "X"): (1, "I"),
    ("Y", "Y"): (1, "I"),
    ("Z", "Z"): (1, "I"),
    ("X", "Y"): (1j, "Z"),
    ("Y", "X"): (-1j, "Z"),
    ("Y", "Z"): (1j, "X"),
    ("Z", "Y"): (-1j, "X"),
    ("Z", "X"): (1j, "Y"),
    ("X", "Z"): (-1j, "Y"),
}

_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class PauliTerm:
    """A single weighted Pauli product, e.g. ``-2.1433 * X0 X1``."""

    __slots__ = ("paulis", "coefficient")

    def __init__(self, paulis: Mapping[int, str] | None = None, coefficient: complex = 1.0):
        cleaned: dict[int, str] = {}
        for qubit, label in (paulis or {}).items():
            label = str(label).upper()
            if label not in _PAULI_LABELS:
                raise IRError(f"invalid Pauli label {label!r}")
            if label != "I":
                cleaned[int(qubit)] = label
        self.paulis: dict[int, str] = dict(sorted(cleaned.items()))
        self.coefficient = complex(coefficient)

    # -- structure -----------------------------------------------------------
    @property
    def is_identity(self) -> bool:
        return not self.paulis

    @property
    def qubits(self) -> tuple[int, ...]:
        return tuple(self.paulis.keys())

    @property
    def pauli_string(self) -> str:
        """Canonical text form like ``"X0 Y3"`` (``"I"`` for the identity)."""
        if self.is_identity:
            return "I"
        return " ".join(f"{label}{qubit}" for qubit, label in self.paulis.items())

    def weight(self) -> int:
        """Number of non-identity factors."""
        return len(self.paulis)

    def copy(self, coefficient: complex | None = None) -> "PauliTerm":
        return PauliTerm(dict(self.paulis), self.coefficient if coefficient is None else coefficient)

    # -- algebra ----------------------------------------------------------------
    def __mul__(self, other):
        if isinstance(other, (int, float, complex)):
            return self.copy(self.coefficient * other)
        if isinstance(other, PauliTerm):
            phase = 1.0 + 0.0j
            result: dict[int, str] = dict(self.paulis)
            for qubit, label in other.paulis.items():
                left = result.get(qubit, "I")
                factor, product = _MULTIPLICATION[(left, label)]
                phase *= factor
                if product == "I":
                    result.pop(qubit, None)
                else:
                    result[qubit] = product
            return PauliTerm(result, self.coefficient * other.coefficient * phase)
        if isinstance(other, PauliOperator):
            return PauliOperator([self]) * other
        return NotImplemented

    def __rmul__(self, other):
        if isinstance(other, (int, float, complex)):
            return self.copy(self.coefficient * other)
        return NotImplemented

    def __neg__(self) -> "PauliTerm":
        return self.copy(-self.coefficient)

    def __add__(self, other):
        return PauliOperator([self]) + other

    def __radd__(self, other):
        return PauliOperator([self]) + other

    def __sub__(self, other):
        return PauliOperator([self]) - other

    def __rsub__(self, other):
        return (-self) + other

    # -- numerical forms -----------------------------------------------------------
    def to_matrix(self, n_qubits: int | None = None) -> np.ndarray:
        """Dense matrix over ``n_qubits`` (little-endian qubit ordering)."""
        n = n_qubits if n_qubits is not None else (max(self.paulis, default=-1) + 1)
        n = max(n, 1)
        if max(self.paulis, default=-1) >= n:
            raise IRError(
                f"term acts on qubit {max(self.paulis)} but n_qubits={n}"
            )
        if n > 14:
            raise IRError("to_matrix is limited to 14 qubits")
        # Build with Kronecker products; qubit 0 is the least significant
        # factor, so it appears last in the kron chain.
        matrix = np.array([[1.0 + 0.0j]])
        for qubit in range(n - 1, -1, -1):
            matrix = np.kron(matrix, _MATRICES[self.paulis.get(qubit, "I")])
        return self.coefficient * matrix

    def basis_rotation_circuit(self, n_qubits: int) -> CompositeInstruction:
        """Circuit rotating each factor's basis so Z-measurement reads it out.

        X factors get an ``H``; Y factors get ``RX(pi/2)`` (rotating Y into
        Z); Z factors need nothing.
        """
        circuit = CompositeInstruction(f"rot_{self.pauli_string}", n_qubits)
        for qubit, label in self.paulis.items():
            if label == "X":
                circuit.add(HGate([qubit]))
            elif label == "Y":
                circuit.add(RXGate([qubit], [np.pi / 2]))
        return circuit

    def commutes_with(self, other: "PauliTerm") -> bool:
        """True when the two Pauli products commute (global commutation)."""
        anticommuting = 0
        for qubit, label in self.paulis.items():
            other_label = other.paulis.get(qubit, "I")
            if other_label != "I" and other_label != label:
                anticommuting += 1
        return anticommuting % 2 == 0

    def qubit_wise_commutes_with(self, other: "PauliTerm") -> bool:
        """True when the factors agree on every shared qubit (QWC grouping)."""
        for qubit, label in self.paulis.items():
            other_label = other.paulis.get(qubit, "I")
            if other_label not in ("I", label):
                return False
        return True

    # -- comparison / display ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PauliTerm)
            and self.paulis == other.paulis
            and np.isclose(self.coefficient, other.coefficient)
        )

    def __hash__(self) -> int:
        return hash((tuple(self.paulis.items()), round(self.coefficient.real, 10),
                     round(self.coefficient.imag, 10)))

    def __repr__(self) -> str:
        coeff = self.coefficient
        coeff_str = f"{coeff.real:g}" if abs(coeff.imag) < 1e-12 else f"({coeff:g})"
        return f"{coeff_str}*{self.pauli_string}" if not self.is_identity else f"{coeff_str}*I"


class PauliOperator:
    """A weighted sum of :class:`PauliTerm` objects (a qubit Hamiltonian)."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Iterable[PauliTerm] = ()):
        combined: dict[tuple[tuple[int, str], ...], PauliTerm] = {}
        for term in terms:
            key = tuple(term.paulis.items())
            if key in combined:
                existing = combined[key]
                combined[key] = existing.copy(existing.coefficient + term.coefficient)
            else:
                combined[key] = term.copy()
        self._terms: tuple[PauliTerm, ...] = tuple(
            t for t in combined.values() if abs(t.coefficient) > 1e-14
        )

    # -- structure -------------------------------------------------------------------
    @property
    def terms(self) -> tuple[PauliTerm, ...]:
        return self._terms

    @property
    def n_terms(self) -> int:
        return len(self._terms)

    @property
    def n_qubits(self) -> int:
        """1 + highest qubit index appearing in any term (0 for pure scalars)."""
        highest = -1
        for term in self._terms:
            highest = max(highest, max(term.paulis, default=-1))
        return highest + 1

    @property
    def constant(self) -> complex:
        """Coefficient of the identity term."""
        for term in self._terms:
            if term.is_identity:
                return term.coefficient
        return 0.0 + 0.0j

    def non_identity_terms(self) -> tuple[PauliTerm, ...]:
        return tuple(t for t in self._terms if not t.is_identity)

    # -- algebra ------------------------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, (int, float, complex)):
            other = PauliOperator([PauliTerm({}, other)])
        elif isinstance(other, PauliTerm):
            other = PauliOperator([other])
        if not isinstance(other, PauliOperator):
            return NotImplemented
        return PauliOperator(list(self._terms) + list(other._terms))

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, (int, float, complex)):
            return self + (-other)
        if isinstance(other, (PauliTerm, PauliOperator)):
            return self + (-1.0 * other if isinstance(other, PauliOperator) else -other)
        return NotImplemented

    def __rsub__(self, other):
        return (-1.0 * self) + other

    def __mul__(self, other):
        if isinstance(other, (int, float, complex)):
            return PauliOperator([t.copy(t.coefficient * other) for t in self._terms])
        if isinstance(other, PauliTerm):
            other = PauliOperator([other])
        if not isinstance(other, PauliOperator):
            return NotImplemented
        products = []
        for left in self._terms:
            for right in other._terms:
                products.append(left * right)
        return PauliOperator(products)

    def __rmul__(self, other):
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def __neg__(self) -> "PauliOperator":
        return self * -1.0

    # -- numerical forms -------------------------------------------------------------------
    def to_matrix(self, n_qubits: int | None = None) -> np.ndarray:
        n = n_qubits if n_qubits is not None else max(self.n_qubits, 1)
        total = np.zeros((1 << n, 1 << n), dtype=complex)
        for term in self._terms:
            total += term.to_matrix(n)
        return total

    def ground_state_energy(self, n_qubits: int | None = None) -> float:
        """Exact minimum eigenvalue (for verification on small Hamiltonians)."""
        matrix = self.to_matrix(n_qubits)
        return float(np.min(np.linalg.eigvalsh(matrix)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliOperator):
            return NotImplemented
        mine = {tuple(t.paulis.items()): t.coefficient for t in self._terms}
        theirs = {tuple(t.paulis.items()): t.coefficient for t in other._terms}
        if set(mine) != set(theirs):
            return False
        return all(np.isclose(mine[k], theirs[k]) for k in mine)

    def __hash__(self) -> int:  # pragma: no cover
        return hash(tuple(sorted(repr(t) for t in self._terms)))

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        return " + ".join(repr(t) for t in self._terms)


# ---------------------------------------------------------------------------
# Factory functions (the QCOR-style X(0), Y(1), Z(2) surface)
# ---------------------------------------------------------------------------


def I(qubit: int = 0) -> PauliTerm:  # noqa: E743 - mirrors the QCOR API name
    """Identity term (the qubit argument is accepted for API symmetry)."""
    return PauliTerm({}, 1.0)


def X(qubit: int) -> PauliTerm:
    """Pauli X acting on ``qubit``."""
    return PauliTerm({qubit: "X"}, 1.0)


def Y(qubit: int) -> PauliTerm:
    """Pauli Y acting on ``qubit``."""
    return PauliTerm({qubit: "Y"}, 1.0)


def Z(qubit: int) -> PauliTerm:
    """Pauli Z acting on ``qubit``."""
    return PauliTerm({qubit: "Z"}, 1.0)
