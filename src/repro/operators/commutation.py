"""Qubit-wise commuting (QWC) grouping of Pauli terms.

Grouping terms that agree on every shared qubit lets a VQE estimate several
terms from a single measured circuit, reducing quantum-kernel launches — one
of the "plenty of classical work to parallelise" points the paper makes for
variational workloads.  Grouping is the standard greedy graph-colouring
heuristic over the QWC compatibility graph (built with :mod:`networkx`).
"""

from __future__ import annotations

import networkx as nx

from .pauli import PauliOperator, PauliTerm

__all__ = ["qubit_wise_commuting_groups"]


def qubit_wise_commuting_groups(observable: PauliOperator) -> list[list[PauliTerm]]:
    """Partition the non-identity terms of ``observable`` into QWC groups.

    Builds the *incompatibility* graph (an edge between two terms that do NOT
    qubit-wise commute) and greedily colours it; terms of the same colour
    form a group measurable with one basis-rotated circuit.
    """
    terms = list(observable.non_identity_terms())
    if not terms:
        return []
    graph = nx.Graph()
    graph.add_nodes_from(range(len(terms)))
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            if not terms[i].qubit_wise_commutes_with(terms[j]):
                graph.add_edge(i, j)
    coloring = nx.coloring.greedy_color(graph, strategy="largest_first")
    groups: dict[int, list[PauliTerm]] = {}
    for index, color in coloring.items():
        groups.setdefault(color, []).append(terms[index])
    return [groups[color] for color in sorted(groups)]
