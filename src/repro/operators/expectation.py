"""Expectation-value estimation from measurement counts.

VQE-style workflows estimate ``<psi|H|psi>`` by measuring each Pauli term in
its own basis-rotated circuit and averaging the measured parities.  This
module builds those measurement circuits and folds count histograms back
into an energy.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import ExecutionError
from ..ir.composite import CompositeInstruction
from ..ir.gates import Measure
from .pauli import PauliOperator, PauliTerm

__all__ = ["expectation_from_counts", "measurement_circuits", "estimate_expectation"]


def expectation_from_counts(counts: Mapping[str, int], qubits: Sequence[int]) -> float:
    """Average parity ``<Z_{q0} Z_{q1} ...>`` from a count histogram.

    ``counts`` keys follow the buffer convention of
    :mod:`repro.simulator.sampling`: character ``i`` of the key is the
    measured value of the ``i``-th *measured* qubit in ascending qubit
    order.  ``qubits`` selects which of those positions enter the parity.
    """
    total = sum(counts.values())
    if total == 0:
        raise ExecutionError("cannot compute an expectation from an empty histogram")
    accumulator = 0.0
    for bitstring, count in counts.items():
        parity = 0
        for position in qubits:
            if position >= len(bitstring):
                raise ExecutionError(
                    f"bitstring {bitstring!r} too short for measured position {position}"
                )
            parity ^= bitstring[position] == "1"
        accumulator += (1.0 - 2.0 * parity) * count
    return accumulator / total


def measurement_circuits(
    ansatz: CompositeInstruction, observable: PauliOperator, n_qubits: int | None = None
) -> list[tuple[PauliTerm, CompositeInstruction]]:
    """Build one measured circuit per non-identity term of ``observable``.

    Each returned circuit is the ansatz followed by the term's basis rotation
    and measurements of the term's qubits.  The identity term carries no
    circuit (its contribution is the constant offset).
    """
    n = n_qubits if n_qubits is not None else max(ansatz.n_qubits, observable.n_qubits)
    circuits: list[tuple[PauliTerm, CompositeInstruction]] = []
    for term in observable.non_identity_terms():
        circuit = CompositeInstruction(f"{ansatz.name}_{term.pauli_string}", n)
        circuit.add(ansatz.copy())
        circuit.add(term.basis_rotation_circuit(n))
        for qubit in term.qubits:
            circuit.add(Measure([qubit]))
        circuits.append((term, circuit))
    return circuits


def estimate_expectation(
    observable: PauliOperator,
    counts_per_term: Mapping[str, Mapping[str, int]],
) -> float:
    """Combine per-term histograms into ``<H>``.

    ``counts_per_term`` maps a term's ``pauli_string`` to its histogram.  The
    bitstring positions in each histogram correspond to the term's qubits in
    ascending order (which is how the execution layer measures them).
    """
    energy = float(observable.constant.real)
    for term in observable.non_identity_terms():
        key = term.pauli_string
        if key not in counts_per_term:
            raise ExecutionError(f"missing measurement results for term {key!r}")
        counts = counts_per_term[key]
        positions = list(range(len(term.qubits)))
        energy += term.coefficient.real * expectation_from_counts(counts, positions)
    return energy
