"""Pauli-operator algebra and expectation-value estimation.

QCOR builds Hamiltonians with expressions like::

    H = 5.907 - 2.1433 * X(0) * X(1) - 2.1433 * Y(0) * Y(1) + 0.21829 * Z(0) - 6.125 * Z(1)

This subpackage provides the same surface: :func:`X`, :func:`Y`, :func:`Z`
return single-qubit Pauli operators supporting ``*``, ``+``, ``-`` with each
other and with scalars, producing a :class:`PauliOperator` (a weighted sum of
:class:`PauliTerm` products).  Expectation values can be computed exactly
from a state vector or estimated from measurement counts, and terms can be
grouped into qubit-wise commuting sets to reduce the number of measured
circuits.
"""

from .pauli import I, PauliOperator, PauliTerm, X, Y, Z
from .expectation import (
    expectation_from_counts,
    measurement_circuits,
    estimate_expectation,
)
from .commutation import qubit_wise_commuting_groups

__all__ = [
    "I",
    "X",
    "Y",
    "Z",
    "PauliTerm",
    "PauliOperator",
    "expectation_from_counts",
    "measurement_circuits",
    "estimate_expectation",
    "qubit_wise_commuting_groups",
]
