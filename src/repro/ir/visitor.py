"""Visitor pattern over IR instructions.

XACC uses visitors to translate IR into backend-specific representations.
Here :class:`InstructionVisitor` dispatches on instruction name: a subclass
implements ``visit_h``, ``visit_cx`` etc.; unimplemented names fall back to
``visit_default``.  The serializer, the XASM printer in tests, and the
cost model all use this mechanism.
"""

from __future__ import annotations

from typing import Any

from .composite import CompositeInstruction
from .instruction import Instruction

__all__ = ["InstructionVisitor"]


class InstructionVisitor:
    """Base visitor; subclass and override ``visit_<name>`` methods."""

    def visit(self, instruction: Instruction) -> Any:
        """Dispatch ``instruction`` to the matching ``visit_<name>`` method."""
        if instruction.is_composite:
            return self.visit_composite(instruction)  # type: ignore[arg-type]
        method = getattr(self, f"visit_{instruction.name.lower()}", None)
        if method is None:
            return self.visit_default(instruction)
        return method(instruction)

    def visit_composite(self, composite: CompositeInstruction) -> list[Any]:
        """Visit every child of a composite, returning the list of results."""
        return [self.visit(inst) for inst in composite]

    def visit_default(self, instruction: Instruction) -> Any:
        """Fallback for instruction names without a dedicated method."""
        return None

    def walk(self, composite: CompositeInstruction) -> list[Any]:
        """Alias of :meth:`visit_composite` for readability at call sites."""
        return self.visit_composite(composite)
