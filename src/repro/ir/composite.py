"""Composite instructions (circuits).

A :class:`CompositeInstruction` is the XACC-style container for an ordered
list of instructions.  It tracks the number of qubits, exposes convenience
queries (depth, gate counts, free parameters), supports parameter binding,
inversion, concatenation and remapping onto other qubit indices, and renders
to XASM text.  ``Circuit`` is an alias provided for readability.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import IRError, InvalidGateError, ParameterBindingError
from .instruction import Instruction
from .parameter import Parameter

__all__ = ["CompositeInstruction", "Circuit"]


class CompositeInstruction(Instruction):
    """An ordered collection of instructions over ``n_qubits`` qubits."""

    is_composite = True
    num_qubits = 0
    num_parameters = 0

    def __init__(
        self,
        name: str = "circuit",
        n_qubits: int | None = None,
        instructions: Iterable[Instruction] = (),
    ):
        self._instructions: list[Instruction] = []
        self._n_qubits = int(n_qubits) if n_qubits is not None else 0
        self._explicit_width = n_qubits is not None
        # Instruction.__init__ validates qubits/params; composites have none.
        super().__init__(name, (), ())
        self.name = str(name)
        for inst in instructions:
            self.add(inst)

    # -- validation overrides -------------------------------------------------
    def _validate(self) -> None:  # composites carry no qubits/parameters
        return None

    # -- container protocol ---------------------------------------------------
    def add(self, instruction: Instruction) -> "CompositeInstruction":
        """Append an instruction (or inline another composite)."""
        if not isinstance(instruction, Instruction):
            raise IRError(f"expected an Instruction, got {type(instruction).__name__}")
        if instruction.is_composite:
            for inner in instruction:  # type: ignore[attr-defined]
                self.add(inner)
            return self
        max_qubit = max(instruction.qubits, default=-1)
        if self._explicit_width and max_qubit >= self._n_qubits:
            raise InvalidGateError(
                f"instruction {instruction.name} touches qubit {max_qubit} but the "
                f"circuit only has {self._n_qubits} qubit(s)"
            )
        self._n_qubits = max(self._n_qubits, max_qubit + 1)
        self._instructions.append(instruction)
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "CompositeInstruction":
        for inst in instructions:
            self.add(inst)
        return self

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return tuple(self._instructions)

    # -- introspection ---------------------------------------------------------
    @property
    def n_qubits(self) -> int:
        return self._n_qubits

    @property
    def n_instructions(self) -> int:
        return len(self._instructions)

    @property
    def n_gates(self) -> int:
        """Number of unitary gate instructions (excludes measure/reset/barrier)."""
        return sum(1 for inst in self._instructions if inst.is_unitary)

    @property
    def n_measurements(self) -> int:
        return sum(1 for inst in self._instructions if inst.is_measurement)

    @property
    def is_parameterized(self) -> bool:
        return any(inst.is_parameterized for inst in self._instructions)

    @property
    def free_parameters(self) -> frozenset[Parameter]:
        free: set[Parameter] = set()
        for inst in self._instructions:
            free.update(inst.free_parameters)
        return frozenset(free)

    def gate_counts(self) -> Counter:
        """Histogram of instruction names, e.g. ``{"H": 1, "CX": 1, "MEASURE": 2}``."""
        return Counter(inst.name for inst in self._instructions)

    def depth(self) -> int:
        """Circuit depth counting each instruction as one time step per qubit."""
        frontier: dict[int, int] = {}
        depth = 0
        for inst in self._instructions:
            if inst.name == "BARRIER":
                if not inst.qubits:
                    level = depth
                    for q in frontier:
                        frontier[q] = level
                    continue
            qubits = inst.qubits or tuple(frontier.keys())
            level = max((frontier.get(q, 0) for q in qubits), default=0) + 1
            for q in qubits:
                frontier[q] = level
            depth = max(depth, level)
        return depth

    def qubits_used(self) -> frozenset[int]:
        used: set[int] = set()
        for inst in self._instructions:
            used.update(inst.qubits)
        return frozenset(used)

    # -- rewriting -------------------------------------------------------------
    def bind(self, values: Mapping[str, float] | Sequence[float]) -> "CompositeInstruction":
        """Bind symbolic parameters.

        ``values`` may be a mapping from parameter name to float, or a
        sequence of floats that is matched against the circuit's free
        parameters sorted by name (the convention used by
        :class:`~repro.core.objective.ObjectiveFunction`).
        """
        if not isinstance(values, Mapping):
            names = sorted(p.name for p in self.free_parameters)
            values_seq = list(values)
            if len(values_seq) != len(names):
                raise ParameterBindingError(
                    f"expected {len(names)} parameter value(s) for {names}, "
                    f"got {len(values_seq)}"
                )
            values = dict(zip(names, (float(v) for v in values_seq)))
        bound = CompositeInstruction(self.name, self._n_qubits)
        for inst in self._instructions:
            bound.add(inst.bind(values) if inst.is_parameterized else inst.copy())
        return bound

    # Keep the Instruction API name available for composites too.
    bind_parameters = bind

    def inverse(self) -> "CompositeInstruction":
        """Return the adjoint circuit (reversed order, each gate inverted)."""
        inv = CompositeInstruction(f"{self.name}_dg", self._n_qubits)
        for inst in reversed(self._instructions):
            inv.add(inst.inverse())
        return inv

    def remapped(self, mapping: Mapping[int, int]) -> "CompositeInstruction":
        """Return a copy with qubit indices translated through ``mapping``."""
        remapped = CompositeInstruction(self.name)
        for inst in self._instructions:
            try:
                new_qubits = [mapping[q] for q in inst.qubits]
            except KeyError as exc:
                raise IRError(f"qubit {exc.args[0]} missing from remapping") from exc
            remapped.add(inst.with_qubits(new_qubits))
        return remapped

    def copy(self) -> "CompositeInstruction":
        clone = CompositeInstruction(self.name, self._n_qubits if self._explicit_width else None)
        clone._n_qubits = self._n_qubits
        for inst in self._instructions:
            clone._instructions.append(inst.copy())
        return clone

    def concatenated(self, other: "CompositeInstruction") -> "CompositeInstruction":
        """Return a new circuit running ``self`` then ``other``."""
        result = self.copy()
        result.name = f"{self.name}+{other.name}"
        for inst in other:
            result.add(inst.copy())
        return result

    def __add__(self, other: "CompositeInstruction") -> "CompositeInstruction":
        if not isinstance(other, CompositeInstruction):
            return NotImplemented
        return self.concatenated(other)

    def without_measurements(self) -> "CompositeInstruction":
        """Return a copy with all MEASURE instructions removed."""
        stripped = CompositeInstruction(self.name, self._n_qubits)
        for inst in self._instructions:
            if not inst.is_measurement:
                stripped.add(inst.copy())
        return stripped

    def measured_qubits(self) -> tuple[int, ...]:
        """Qubits that are explicitly measured, in program order (deduplicated)."""
        seen: list[int] = []
        for inst in self._instructions:
            if inst.is_measurement and inst.qubits[0] not in seen:
                seen.append(inst.qubits[0])
        return tuple(seen)

    # -- dense form (for tests / small circuits) --------------------------------
    def to_unitary(self) -> np.ndarray:
        """Return the full 2^n x 2^n unitary of the (measurement-free) circuit.

        Intended for verification on small circuits; raises for circuits that
        contain measurements or more than 12 qubits.
        """
        if self.n_measurements:
            raise IRError("cannot build the unitary of a circuit containing measurements")
        if self._n_qubits > 12:
            raise IRError("to_unitary() is limited to 12 qubits")
        from ..simulator.unitary import circuit_unitary  # local import, avoids a cycle

        return circuit_unitary(self)

    # -- text ---------------------------------------------------------------------
    def to_xasm(self) -> str:
        """Render the circuit as an XASM-like kernel body."""
        lines = [f"// kernel {self.name} ({self._n_qubits} qubits)"]
        lines.extend(inst.to_xasm() for inst in self._instructions)
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompositeInstruction):
            return NotImplemented
        return (
            self._n_qubits == other._n_qubits
            and len(self._instructions) == len(other._instructions)
            and all(a == b for a, b in zip(self._instructions, other._instructions))
        )

    def __hash__(self) -> int:  # pragma: no cover
        return hash((self.name, self._n_qubits, len(self._instructions)))

    def __repr__(self) -> str:
        return (
            f"CompositeInstruction(name={self.name!r}, n_qubits={self._n_qubits}, "
            f"n_instructions={len(self._instructions)})"
        )


#: Readable alias used throughout the code base.
Circuit = CompositeInstruction
