"""Symbolic parameters for parameterized quantum kernels.

QCOR kernels take classical arguments (e.g. the ``theta`` of the VQE ansatz
in Listing 3 of the paper).  When a kernel is traced into IR without concrete
values we represent those arguments as :class:`Parameter` objects.  A small
amount of affine arithmetic (``2 * theta + 0.5``) is supported through
:class:`ParameterExpression`, which is all the paper's kernels require while
keeping binding cheap and exact.
"""

from __future__ import annotations

import math
from typing import Mapping, Union

from ..exceptions import ParameterBindingError

__all__ = ["Parameter", "ParameterExpression", "ParameterValue", "bind_value"]

#: A gate angle is either a concrete float or a symbolic expression.
ParameterValue = Union[float, int, "Parameter", "ParameterExpression"]


class ParameterExpression:
    """Affine expression ``scale * parameter + offset``.

    This is intentionally limited: the kernels in the paper (Bell, Shor,
    VQE ansatz, QAOA) only ever scale or shift their classical arguments
    before using them as rotation angles.  Keeping expressions affine means
    binding is a single multiply-add and equality/hashing stay trivial.
    """

    __slots__ = ("parameter", "scale", "offset")

    def __init__(self, parameter: "Parameter", scale: float = 1.0, offset: float = 0.0):
        self.parameter = parameter
        self.scale = float(scale)
        self.offset = float(offset)

    # -- arithmetic ---------------------------------------------------------
    def __mul__(self, other: float) -> "ParameterExpression":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return ParameterExpression(self.parameter, self.scale * other, self.offset * other)

    __rmul__ = __mul__

    def __truediv__(self, other: float) -> "ParameterExpression":
        if not isinstance(other, (int, float)):
            return NotImplemented
        if other == 0:
            raise ZeroDivisionError("division of parameter expression by zero")
        return self * (1.0 / other)

    def __add__(self, other: float) -> "ParameterExpression":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return ParameterExpression(self.parameter, self.scale, self.offset + other)

    __radd__ = __add__

    def __sub__(self, other: float) -> "ParameterExpression":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: float) -> "ParameterExpression":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return ParameterExpression(self.parameter, -self.scale, other - self.offset)

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    # -- binding ------------------------------------------------------------
    def bind(self, values: Mapping[str, float]) -> float:
        """Evaluate the expression given concrete parameter values."""
        name = self.parameter.name
        if name not in values:
            raise ParameterBindingError(f"no value provided for parameter {name!r}")
        return self.scale * float(values[name]) + self.offset

    @property
    def parameters(self) -> frozenset["Parameter"]:
        return frozenset({self.parameter})

    # -- comparison / display ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ParameterExpression)
            and self.parameter == other.parameter
            and math.isclose(self.scale, other.scale)
            and math.isclose(self.offset, other.offset)
        )

    def __hash__(self) -> int:
        return hash((self.parameter, round(self.scale, 12), round(self.offset, 12)))

    def __repr__(self) -> str:
        pieces = []
        if self.scale == 1.0:
            pieces.append(self.parameter.name)
        else:
            pieces.append(f"{self.scale:g}*{self.parameter.name}")
        if self.offset:
            pieces.append(f"{self.offset:+g}")
        return "".join(pieces)


class Parameter:
    """A named symbolic kernel argument.

    Two parameters are equal iff their names are equal, so a parameter can be
    recreated (e.g. by a parser) and still bind against the original.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ParameterBindingError(f"parameter name must be a non-empty string, got {name!r}")
        self.name = name

    # Arithmetic promotes to ParameterExpression.
    def __mul__(self, other: float) -> ParameterExpression:
        if not isinstance(other, (int, float)):
            return NotImplemented
        return ParameterExpression(self, scale=other)

    __rmul__ = __mul__

    def __truediv__(self, other: float) -> ParameterExpression:
        if not isinstance(other, (int, float)):
            return NotImplemented
        if other == 0:
            raise ZeroDivisionError("division of parameter by zero")
        return ParameterExpression(self, scale=1.0 / other)

    def __add__(self, other: float) -> ParameterExpression:
        if not isinstance(other, (int, float)):
            return NotImplemented
        return ParameterExpression(self, offset=other)

    __radd__ = __add__

    def __sub__(self, other: float) -> ParameterExpression:
        if not isinstance(other, (int, float)):
            return NotImplemented
        return ParameterExpression(self, offset=-other)

    def __rsub__(self, other: float) -> ParameterExpression:
        if not isinstance(other, (int, float)):
            return NotImplemented
        return ParameterExpression(self, scale=-1.0, offset=other)

    def __neg__(self) -> ParameterExpression:
        return ParameterExpression(self, scale=-1.0)

    def bind(self, values: Mapping[str, float]) -> float:
        if self.name not in values:
            raise ParameterBindingError(f"no value provided for parameter {self.name!r}")
        return float(values[self.name])

    @property
    def parameters(self) -> frozenset["Parameter"]:
        return frozenset({self})

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Parameter) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Parameter", self.name))

    def __repr__(self) -> str:
        return self.name


def bind_value(value: ParameterValue, values: Mapping[str, float] | None = None) -> float:
    """Resolve ``value`` to a concrete float.

    Concrete numbers pass through; symbolic values are bound against
    ``values`` (raising :class:`ParameterBindingError` when missing).
    """
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, (Parameter, ParameterExpression)):
        return value.bind(values or {})
    raise ParameterBindingError(f"cannot bind value of type {type(value).__name__}")
