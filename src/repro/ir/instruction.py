"""Base :class:`Instruction` type for the IR.

An instruction is a named operation acting on a tuple of qubit indices with
an optional tuple of classical parameters (gate angles).  Concrete gate
classes live in :mod:`repro.ir.gates`; circuits (composites of instructions)
live in :mod:`repro.ir.composite`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import InvalidGateError
from .parameter import Parameter, ParameterExpression, ParameterValue, bind_value

__all__ = ["Instruction"]


class Instruction:
    """A single IR node.

    Attributes
    ----------
    name:
        Canonical upper-case mnemonic (``"H"``, ``"CX"``, ``"MEASURE"`` ...).
    qubits:
        Tuple of integer qubit indices the instruction acts on.
    parameters:
        Tuple of classical parameters (floats or symbolic
        :class:`~repro.ir.parameter.Parameter` expressions).
    """

    #: Number of qubits the instruction acts on; subclasses override.
    num_qubits: int = 1
    #: Number of classical parameters; subclasses override.
    num_parameters: int = 0
    #: Whether the instruction is a composite (circuit).
    is_composite: bool = False

    def __init__(
        self,
        name: str,
        qubits: Sequence[int],
        parameters: Sequence[ParameterValue] = (),
    ):
        self.name = str(name).upper()
        self.qubits = tuple(int(q) for q in qubits)
        self.parameters = tuple(parameters)
        self._validate()

    # -- validation ---------------------------------------------------------
    def _validate(self) -> None:
        if any(q < 0 for q in self.qubits):
            raise InvalidGateError(
                f"{self.name}: qubit indices must be non-negative, got {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise InvalidGateError(
                f"{self.name}: duplicate qubit indices {self.qubits}"
            )
        if self.num_qubits and len(self.qubits) != self.num_qubits:
            raise InvalidGateError(
                f"{self.name} expects {self.num_qubits} qubit(s), got {len(self.qubits)}"
            )
        if self.num_parameters and len(self.parameters) != self.num_parameters:
            raise InvalidGateError(
                f"{self.name} expects {self.num_parameters} parameter(s), "
                f"got {len(self.parameters)}"
            )

    # -- introspection -------------------------------------------------------
    @property
    def is_parameterized(self) -> bool:
        """True when at least one parameter is still symbolic."""
        return any(isinstance(p, (Parameter, ParameterExpression)) for p in self.parameters)

    @property
    def free_parameters(self) -> frozenset[Parameter]:
        """The set of unbound symbolic parameters used by this instruction."""
        free: set[Parameter] = set()
        for p in self.parameters:
            if isinstance(p, (Parameter, ParameterExpression)):
                free.update(p.parameters)
        return frozenset(free)

    @property
    def is_measurement(self) -> bool:
        return self.name == "MEASURE"

    @property
    def is_unitary(self) -> bool:
        """True for pure gates (excludes measure/reset/barrier)."""
        return self.name not in ("MEASURE", "RESET", "BARRIER")

    def bound_parameters(self, values: Mapping[str, float] | None = None) -> tuple[float, ...]:
        """Return concrete float parameters, binding symbols from ``values``."""
        return tuple(bind_value(p, values) for p in self.parameters)

    # -- matrix form ---------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of the gate (little-endian qubit order).

        Subclasses representing unitary gates must implement this.  Symbolic
        parameters must be bound first (see :meth:`bind`).
        """
        raise InvalidGateError(f"instruction {self.name} has no matrix form")

    # -- rewriting ------------------------------------------------------------
    def bind(self, values: Mapping[str, float]) -> "Instruction":
        """Return a copy with all symbolic parameters replaced by floats."""
        if not self.is_parameterized:
            return self.copy()
        bound = [
            bind_value(p, values) if isinstance(p, (Parameter, ParameterExpression)) else p
            for p in self.parameters
        ]
        return self.with_parameters(bound)

    def with_qubits(self, qubits: Iterable[int]) -> "Instruction":
        """Return a copy acting on ``qubits`` (used when inlining circuits)."""
        clone = self.copy()
        clone.qubits = tuple(int(q) for q in qubits)
        clone._validate()
        return clone

    def with_parameters(self, parameters: Sequence[ParameterValue]) -> "Instruction":
        """Return a copy with the given parameters."""
        clone = self.copy()
        clone.parameters = tuple(parameters)
        clone._validate()
        return clone

    def copy(self) -> "Instruction":
        """Shallow copy preserving the concrete subclass."""
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        return clone

    def inverse(self) -> "Instruction":
        """Return the inverse instruction.

        The default implementation only works for concrete (non-symbolic)
        unitary gates and produces a
        :class:`~repro.ir.gates.UnitaryGate` holding the conjugate
        transpose; named gates override this with their exact inverse.
        """
        from .gates import UnitaryGate  # local import to avoid a cycle

        if not self.is_unitary:
            raise InvalidGateError(f"{self.name} is not invertible")
        return UnitaryGate(np.conjugate(self.matrix()).T, self.qubits, name=f"{self.name}_DG")

    # -- text forms -----------------------------------------------------------
    def to_xasm(self) -> str:
        """Render as an XASM-style statement, e.g. ``CX(q[0], q[1]);``."""
        args = [f"q[{q}]" for q in self.qubits]
        args += [_format_param(p) for p in self.parameters]
        return f"{self.name}({', '.join(args)});"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        if self.name != other.name or self.qubits != other.qubits:
            return False
        if len(self.parameters) != len(other.parameters):
            return False
        for a, b in zip(self.parameters, other.parameters):
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                if not np.isclose(float(a), float(b)):
                    return False
            elif a != b:
                return False
        return True

    def __hash__(self) -> int:  # pragma: no cover - instructions are rarely hashed
        return hash((self.name, self.qubits, tuple(repr(p) for p in self.parameters)))

    def __repr__(self) -> str:
        params = f", params={list(self.parameters)!r}" if self.parameters else ""
        return f"{type(self).__name__}(qubits={list(self.qubits)}{params})"


def _format_param(p: ParameterValue) -> str:
    if isinstance(p, (Parameter, ParameterExpression)):
        return repr(p)
    return f"{float(p):.10g}"
