"""Fluent circuit construction API.

:class:`CircuitBuilder` offers a chainable interface for building circuits in
plain Python, mirroring the gate calls one would write inside a QCOR
``__qpu__`` kernel::

    circuit = (
        CircuitBuilder(2, name="bell")
        .h(0)
        .cx(0, 1)
        .measure_all()
        .build()
    )
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .composite import CompositeInstruction
from .gates import (
    CCX,
    CH,
    CPhase,
    CRZ,
    CSwap,
    CX,
    CY,
    CZ,
    Barrier,
    H,
    Identity,
    ISwap,
    Measure,
    PermutationGate,
    Reset,
    RX,
    RY,
    RZ,
    S,
    Sdg,
    Swap,
    T,
    Tdg,
    U3,
    UnitaryGate,
    X,
    Y,
    Z,
)
from .parameter import ParameterValue

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Chainable builder producing a :class:`CompositeInstruction`."""

    def __init__(self, n_qubits: int | None = None, name: str = "circuit"):
        self._circuit = CompositeInstruction(name, n_qubits)

    # -- single-qubit gates -----------------------------------------------------
    def i(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(Identity([qubit]))
        return self

    def h(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(H([qubit]))
        return self

    def x(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(X([qubit]))
        return self

    def y(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(Y([qubit]))
        return self

    def z(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(Z([qubit]))
        return self

    def s(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(S([qubit]))
        return self

    def sdg(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(Sdg([qubit]))
        return self

    def t(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(T([qubit]))
        return self

    def tdg(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(Tdg([qubit]))
        return self

    def rx(self, qubit: int, theta: ParameterValue) -> "CircuitBuilder":
        self._circuit.add(RX([qubit], [theta]))
        return self

    def ry(self, qubit: int, theta: ParameterValue) -> "CircuitBuilder":
        self._circuit.add(RY([qubit], [theta]))
        return self

    def rz(self, qubit: int, theta: ParameterValue) -> "CircuitBuilder":
        self._circuit.add(RZ([qubit], [theta]))
        return self

    def u3(
        self, qubit: int, theta: ParameterValue, phi: ParameterValue, lam: ParameterValue
    ) -> "CircuitBuilder":
        self._circuit.add(U3([qubit], [theta, phi, lam]))
        return self

    # -- two-qubit gates ----------------------------------------------------------
    def cx(self, control: int, target: int) -> "CircuitBuilder":
        self._circuit.add(CX([control, target]))
        return self

    cnot = cx

    def cy(self, control: int, target: int) -> "CircuitBuilder":
        self._circuit.add(CY([control, target]))
        return self

    def cz(self, control: int, target: int) -> "CircuitBuilder":
        self._circuit.add(CZ([control, target]))
        return self

    def ch(self, control: int, target: int) -> "CircuitBuilder":
        self._circuit.add(CH([control, target]))
        return self

    def crz(self, control: int, target: int, theta: ParameterValue) -> "CircuitBuilder":
        self._circuit.add(CRZ([control, target], [theta]))
        return self

    def cphase(self, control: int, target: int, theta: ParameterValue) -> "CircuitBuilder":
        self._circuit.add(CPhase([control, target], [theta]))
        return self

    def swap(self, qubit0: int, qubit1: int) -> "CircuitBuilder":
        self._circuit.add(Swap([qubit0, qubit1]))
        return self

    def iswap(self, qubit0: int, qubit1: int) -> "CircuitBuilder":
        self._circuit.add(ISwap([qubit0, qubit1]))
        return self

    # -- three-qubit gates ----------------------------------------------------------
    def ccx(self, control0: int, control1: int, target: int) -> "CircuitBuilder":
        self._circuit.add(CCX([control0, control1, target]))
        return self

    toffoli = ccx

    def cswap(self, control: int, target0: int, target1: int) -> "CircuitBuilder":
        self._circuit.add(CSwap([control, target0, target1]))
        return self

    # -- matrix gates -----------------------------------------------------------------
    def unitary(
        self, matrix: np.ndarray, qubits: Sequence[int], name: str = "UNITARY"
    ) -> "CircuitBuilder":
        self._circuit.add(UnitaryGate(matrix, qubits, name=name))
        return self

    def permutation(
        self, permutation: Sequence[int], qubits: Sequence[int], name: str = "PERM"
    ) -> "CircuitBuilder":
        self._circuit.add(PermutationGate(permutation, qubits, name=name))
        return self

    # -- non-unitary -------------------------------------------------------------------
    def measure(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(Measure([qubit]))
        return self

    def measure_all(self) -> "CircuitBuilder":
        """Measure every qubit the circuit currently uses, in index order."""
        n = self._circuit.n_qubits
        for q in range(n):
            self._circuit.add(Measure([q]))
        return self

    def reset(self, qubit: int) -> "CircuitBuilder":
        self._circuit.add(Reset([qubit]))
        return self

    def barrier(self, *qubits: int) -> "CircuitBuilder":
        self._circuit.add(Barrier(list(qubits)))
        return self

    # -- composition ---------------------------------------------------------------------
    def append(self, other: CompositeInstruction) -> "CircuitBuilder":
        """Inline another circuit."""
        self._circuit.add(other)
        return self

    def build(self) -> CompositeInstruction:
        """Return the constructed circuit."""
        return self._circuit
