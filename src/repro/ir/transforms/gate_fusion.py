"""Fusion of single-qubit gate runs into a single U3 gate.

Dense state-vector simulation cost is dominated by the number of gate
applications; fusing a run of consecutive single-qubit gates on the same
qubit into one :class:`~repro.ir.gates.U3` (computed by multiplying the 2x2
matrices) reduces that count.  This mirrors the gate-fusion optimisation
performed by production simulators such as Quantum++ and Qulacs.
"""

from __future__ import annotations

import numpy as np

from ..composite import CompositeInstruction
from ..gates import U3
from ..instruction import Instruction
from .pass_base import BasePass

__all__ = ["SingleQubitFusionPass"]


class SingleQubitFusionPass(BasePass):
    """Fuse maximal runs of concrete single-qubit gates into U3 gates.

    Runs are broken by any multi-qubit gate, measurement, reset or barrier
    touching the qubit, and by symbolic (unbound) gates.  Runs of length one
    are left as-is to keep circuits readable.
    """

    def run(self, circuit: CompositeInstruction) -> CompositeInstruction:
        out = CompositeInstruction(circuit.name, circuit.n_qubits)
        #: per-qubit pending run of (instruction) objects
        pending: dict[int, list[Instruction]] = {}

        def flush(qubit: int) -> None:
            run = pending.pop(qubit, [])
            if not run:
                return
            if len(run) == 1:
                out.add(run[0].copy())
                return
            matrix = np.eye(2, dtype=complex)
            for gate in run:
                matrix = gate.matrix() @ matrix
            out.add(U3.from_matrix(matrix, qubit))

        def flush_all() -> None:
            for qubit in sorted(list(pending.keys())):
                flush(qubit)

        for inst in circuit:
            if (
                inst.is_unitary
                and len(inst.qubits) == 1
                and not inst.is_parameterized
                and not inst.is_composite
            ):
                pending.setdefault(inst.qubits[0], []).append(inst)
                continue
            if inst.name == "BARRIER" and not inst.qubits:
                flush_all()
                out.add(inst.copy())
                continue
            # Any other instruction breaks the runs on the qubits it touches.
            for qubit in inst.qubits:
                flush(qubit)
            out.add(inst.copy())
        flush_all()
        return out
