"""Circuit transformation passes.

XACC exposes ``IRTransformation`` plugins; this subpackage provides the
Python analogues used by the default compilation pipeline:

* :class:`InverseCancellationPass` — removes adjacent gate/inverse pairs
  (``H H``, ``CX CX``, ``S Sdg`` ...).
* :class:`RotationMergingPass` — merges adjacent rotations about the same
  axis on the same qubit and drops rotations with angle ~ 0 (mod 4 pi).
* :class:`SingleQubitFusionPass` — fuses runs of single-qubit gates on a
  qubit into one :class:`~repro.ir.gates.U3`.
* :class:`PassManager` — runs an ordered list of passes to a fixed point.
* :func:`classify_clifford` — compile-time circuit-class analysis: lowers
  Clifford circuits (including Clifford-angle rotations) to the stabilizer
  tableau's primitive gate set, or names the first non-Clifford obstruction.
"""

from .pass_base import BasePass, PassManager, default_pass_manager
from .inverse_cancellation import InverseCancellationPass
from .rotation_merging import RotationMergingPass
from .gate_fusion import SingleQubitFusionPass
from .clifford import (
    CliffordClassification,
    classify_clifford,
    clear_clifford_cache,
)

__all__ = [
    "BasePass",
    "PassManager",
    "default_pass_manager",
    "InverseCancellationPass",
    "RotationMergingPass",
    "SingleQubitFusionPass",
    "CliffordClassification",
    "classify_clifford",
    "clear_clifford_cache",
]
