"""Adjacent inverse-pair cancellation."""

from __future__ import annotations

from ..composite import CompositeInstruction
from ..instruction import Instruction
from .pass_base import BasePass

__all__ = ["InverseCancellationPass"]

#: Gates that are their own inverse (cancel when adjacent on identical qubits).
_SELF_INVERSE = {"H", "X", "Y", "Z", "CX", "CY", "CZ", "CH", "SWAP", "CCX", "CSWAP", "I"}

#: Pairs of named gates that cancel each other (in either order).
_INVERSE_PAIRS = {("S", "SDG"), ("SDG", "S"), ("T", "TDG"), ("TDG", "T")}


def _cancels(a: Instruction, b: Instruction) -> bool:
    """True when ``a`` followed immediately by ``b`` is the identity."""
    if a.qubits != b.qubits:
        return False
    if a.is_parameterized or b.is_parameterized:
        return False
    if a.name in _SELF_INVERSE and a.name == b.name:
        return True
    if (a.name, b.name) in _INVERSE_PAIRS:
        return True
    return False


class InverseCancellationPass(BasePass):
    """Remove adjacent gate pairs that compose to the identity.

    The pass only considers *immediately adjacent* instructions on exactly
    the same qubit tuple, which is sufficient once rotation merging has
    collapsed runs of rotations.  Intervening instructions on disjoint qubits
    do not block cancellation.
    """

    def run(self, circuit: CompositeInstruction) -> CompositeInstruction:
        instructions = list(circuit)
        removed = True
        while removed:
            removed = False
            result: list[Instruction] = []
            i = 0
            while i < len(instructions):
                inst = instructions[i]
                partner_index = self._find_adjacent_partner(instructions, i)
                if partner_index is not None:
                    del instructions[partner_index]
                    del instructions[i]
                    removed = True
                    # restart scanning from the beginning of the modified list
                    result = []
                    i = 0
                    continue
                result.append(inst)
                i += 1
            instructions = result if not removed else instructions
        out = CompositeInstruction(circuit.name, circuit.n_qubits)
        for inst in instructions:
            out.add(inst.copy())
        return out

    @staticmethod
    def _find_adjacent_partner(instructions: list[Instruction], index: int) -> int | None:
        """Find a later instruction that cancels ``instructions[index]``.

        The search walks forward while intervening instructions act on
        disjoint qubits; it stops at the first instruction sharing a qubit.
        """
        inst = instructions[index]
        if inst.is_measurement or inst.name in ("RESET", "BARRIER"):
            return None
        qubits = set(inst.qubits)
        for j in range(index + 1, len(instructions)):
            other = instructions[j]
            if not qubits & set(other.qubits):
                continue
            if _cancels(inst, other):
                return j
            return None
        return None
