"""Pass infrastructure: :class:`BasePass` and :class:`PassManager`."""

from __future__ import annotations

from typing import Iterable, Sequence

from ...exceptions import TransformError
from ..composite import CompositeInstruction

__all__ = ["BasePass", "PassManager", "default_pass_manager"]


class BasePass:
    """A circuit-to-circuit transformation.

    Passes must be pure: they receive a circuit and return a *new* circuit
    (they never mutate their input), which keeps them trivially safe to run
    from multiple threads — one of the properties the thread-safety layer in
    :mod:`repro.core` relies on.
    """

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def run(self, circuit: CompositeInstruction) -> CompositeInstruction:
        """Transform ``circuit`` and return the result."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PassManager:
    """Runs an ordered list of passes, optionally iterating to a fixed point."""

    def __init__(self, passes: Sequence[BasePass] = (), max_iterations: int = 10):
        if max_iterations < 1:
            raise TransformError("max_iterations must be at least 1")
        self.passes: list[BasePass] = list(passes)
        self.max_iterations = max_iterations

    def append(self, pass_: BasePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(
        self, circuit: CompositeInstruction, to_fixed_point: bool = True
    ) -> CompositeInstruction:
        """Apply all passes (repeatedly, until nothing changes, by default)."""
        current = circuit
        for _ in range(self.max_iterations if to_fixed_point else 1):
            before = [(inst.name, inst.qubits, inst.parameters) for inst in current]
            for pass_ in self.passes:
                current = pass_.run(current)
                if not isinstance(current, CompositeInstruction):
                    raise TransformError(
                        f"pass {pass_.name} returned {type(current).__name__}, "
                        "expected a CompositeInstruction"
                    )
            after = [(inst.name, inst.qubits, inst.parameters) for inst in current]
            if before == after:
                break
        return current

    def __iter__(self) -> Iterable[BasePass]:
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)


def default_pass_manager() -> PassManager:
    """The default optimisation pipeline used by accelerators before execution."""
    from .inverse_cancellation import InverseCancellationPass
    from .rotation_merging import RotationMergingPass

    return PassManager([InverseCancellationPass(), RotationMergingPass()])
