"""Merging of adjacent same-axis rotations."""

from __future__ import annotations

import math

from ..composite import CompositeInstruction
from ..gates import create_gate
from ..instruction import Instruction
from .pass_base import BasePass

__all__ = ["RotationMergingPass"]

_ROTATIONS = {"RX", "RY", "RZ", "CRZ", "CPHASE"}

#: Angles are periodic with period 4*pi for RX/RY/RZ (2*pi global phase aside)
_PERIOD = 4.0 * math.pi


class RotationMergingPass(BasePass):
    """Merge adjacent rotations about the same axis on the same qubits.

    ``RZ(a) RZ(b) -> RZ(a + b)``; rotations whose merged angle is ~ 0
    (mod 4 pi) are dropped entirely.  Symbolic (unbound) rotations are left
    untouched, so the pass is safe to run on parameterized ansatz circuits.
    """

    def __init__(self, tolerance: float = 1e-12):
        super().__init__()
        self.tolerance = tolerance

    def run(self, circuit: CompositeInstruction) -> CompositeInstruction:
        merged: list[Instruction] = []
        for inst in circuit:
            if (
                merged
                and inst.name in _ROTATIONS
                and not inst.is_parameterized
                and self._mergeable(merged[-1], inst)
            ):
                previous = merged.pop()
                angle = previous.bound_parameters()[0] + inst.bound_parameters()[0]
                angle = math.remainder(angle, _PERIOD)
                if abs(angle) > self.tolerance:
                    merged.append(create_gate(inst.name, inst.qubits, [angle]))
                continue
            merged.append(inst)
        # Drop standalone near-zero rotations.
        filtered = [
            inst
            for inst in merged
            if not (
                inst.name in _ROTATIONS
                and not inst.is_parameterized
                and abs(math.remainder(inst.bound_parameters()[0], _PERIOD)) <= self.tolerance
            )
        ]
        out = CompositeInstruction(circuit.name, circuit.n_qubits)
        for inst in filtered:
            out.add(inst.copy())
        return out

    @staticmethod
    def _mergeable(a: Instruction, b: Instruction) -> bool:
        return a.name == b.name and a.qubits == b.qubits and not a.is_parameterized
