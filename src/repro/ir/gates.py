"""Concrete gate definitions and the gate registry.

All matrices are expressed in the computational basis with **little-endian**
qubit ordering inside a gate: for a two-qubit gate acting on ``(q0, q1)``,
the basis ordering of the 4x4 matrix is ``|q1 q0>`` = ``00, 01, 10, 11`` with
``q0`` the least-significant bit.  The simulator's gate-application kernels
use the same convention, so matrices can be applied without reordering.

The registry (:data:`GATE_REGISTRY`) maps upper-case mnemonics (and common
aliases like ``CNOT``) to gate classes, which is what the XASM/OpenQASM
parsers and the ``@qpu`` tracing DSL use to build instructions by name.
"""

from __future__ import annotations

import cmath
import math
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import InvalidGateError
from .instruction import Instruction
from .parameter import ParameterValue

__all__ = [
    "Gate",
    "GATE_REGISTRY",
    "create_gate",
    "Identity",
    "H",
    "X",
    "Y",
    "Z",
    "S",
    "Sdg",
    "T",
    "Tdg",
    "RX",
    "RY",
    "RZ",
    "U3",
    "CX",
    "CY",
    "CZ",
    "CH",
    "CRZ",
    "CPhase",
    "Swap",
    "ISwap",
    "CCX",
    "CSwap",
    "PermutationGate",
    "UnitaryGate",
    "Measure",
    "Reset",
    "Barrier",
]


class Gate(Instruction):
    """Base class for unitary gates (adds default name from the class)."""

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__(type(self).__name__.upper(), qubits, parameters)


# ---------------------------------------------------------------------------
# Single-qubit fixed gates
# ---------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)


class Identity(Gate):
    """Single-qubit identity."""

    num_qubits = 1

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__(qubits, parameters)
        self.name = "I"

    def matrix(self) -> np.ndarray:
        return np.eye(2, dtype=complex)

    def inverse(self) -> Instruction:
        return self.copy()


class H(Gate):
    """Hadamard gate."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=complex)

    def inverse(self) -> Instruction:
        return self.copy()


class X(Gate):
    """Pauli-X (NOT) gate."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[0, 1], [1, 0]], dtype=complex)

    def inverse(self) -> Instruction:
        return self.copy()


class Y(Gate):
    """Pauli-Y gate."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[0, -1j], [1j, 0]], dtype=complex)

    def inverse(self) -> Instruction:
        return self.copy()


class Z(Gate):
    """Pauli-Z gate."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1]], dtype=complex)

    def inverse(self) -> Instruction:
        return self.copy()


class S(Gate):
    """Phase gate (sqrt(Z))."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, 1j]], dtype=complex)

    def inverse(self) -> Instruction:
        return Sdg(self.qubits)


class Sdg(Gate):
    """Adjoint of the S gate."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1j]], dtype=complex)

    def inverse(self) -> Instruction:
        return S(self.qubits)


class T(Gate):
    """T gate (pi/8 phase)."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)

    def inverse(self) -> Instruction:
        return Tdg(self.qubits)


class Tdg(Gate):
    """Adjoint of the T gate."""

    num_qubits = 1

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)

    def inverse(self) -> Instruction:
        return T(self.qubits)


# ---------------------------------------------------------------------------
# Single-qubit rotations
# ---------------------------------------------------------------------------


class RX(Gate):
    """Rotation about X: ``exp(-i theta X / 2)``."""

    num_qubits = 1
    num_parameters = 1

    def matrix(self) -> np.ndarray:
        (theta,) = self.bound_parameters()
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)

    def inverse(self) -> Instruction:
        return RX(self.qubits, [_negate(self.parameters[0])])


class RY(Gate):
    """Rotation about Y: ``exp(-i theta Y / 2)``."""

    num_qubits = 1
    num_parameters = 1

    def matrix(self) -> np.ndarray:
        (theta,) = self.bound_parameters()
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)

    def inverse(self) -> Instruction:
        return RY(self.qubits, [_negate(self.parameters[0])])


class RZ(Gate):
    """Rotation about Z: ``exp(-i theta Z / 2)``."""

    num_qubits = 1
    num_parameters = 1

    def matrix(self) -> np.ndarray:
        (theta,) = self.bound_parameters()
        return np.array(
            [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]], dtype=complex
        )

    def inverse(self) -> Instruction:
        return RZ(self.qubits, [_negate(self.parameters[0])])


class U3(Gate):
    """General single-qubit gate ``U3(theta, phi, lambda)`` (OpenQASM u3)."""

    num_qubits = 1
    num_parameters = 3

    def matrix(self) -> np.ndarray:
        theta, phi, lam = self.bound_parameters()
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [c, -cmath.exp(1j * lam) * s],
                [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
            ],
            dtype=complex,
        )

    def inverse(self) -> Instruction:
        theta, phi, lam = self.parameters
        return U3(self.qubits, [_negate(theta), _negate(lam), _negate(phi)])

    @staticmethod
    def from_matrix(matrix: np.ndarray, qubit: int) -> "U3":
        """Decompose a 2x2 unitary (up to global phase) into a U3 gate."""
        if matrix.shape != (2, 2):
            raise InvalidGateError("U3.from_matrix expects a 2x2 matrix")
        # Remove global phase so that matrix[0, 0] is real and non-negative.
        det = np.linalg.det(matrix)
        mat = matrix / np.sqrt(det)
        phase = np.angle(mat[0, 0])
        mat = mat * cmath.exp(-1j * phase)
        theta = 2 * math.atan2(abs(mat[1, 0]), abs(mat[0, 0]).real)
        if abs(mat[1, 0]) < 1e-12:
            phi = 0.0
            lam = np.angle(mat[1, 1])
        elif abs(mat[0, 0]) < 1e-12:
            phi = np.angle(mat[1, 0])
            lam = np.angle(-mat[0, 1])
        else:
            phi = np.angle(mat[1, 0])
            lam = np.angle(-mat[0, 1])
        return U3([qubit], [theta, phi, lam])


# ---------------------------------------------------------------------------
# Two-qubit gates.  Convention: qubits = (control, target) where applicable;
# matrix basis order is |q1 q0> with q0 = first listed qubit as LSB.
# ---------------------------------------------------------------------------


def _controlled(single: np.ndarray) -> np.ndarray:
    """Controlled-U with control = first qubit (LSB), target = second qubit.

    Basis order |q1 q0>: states where q0 (control) = 1 are columns/rows
    {1, 3}; the target amplitude block is acted on by ``single``.
    """
    mat = np.eye(4, dtype=complex)
    # |q1=0,q0=1> = index 1, |q1=1,q0=1> = index 3
    mat[np.ix_([1, 3], [1, 3])] = single
    return mat


class CX(Gate):
    """Controlled-X (CNOT); qubits = (control, target)."""

    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return _controlled(X([0]).matrix())

    def inverse(self) -> Instruction:
        return self.copy()


class CY(Gate):
    """Controlled-Y; qubits = (control, target)."""

    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return _controlled(Y([0]).matrix())

    def inverse(self) -> Instruction:
        return self.copy()


class CZ(Gate):
    """Controlled-Z; symmetric in its qubits."""

    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return _controlled(Z([0]).matrix())

    def inverse(self) -> Instruction:
        return self.copy()


class CH(Gate):
    """Controlled-Hadamard; qubits = (control, target)."""

    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return _controlled(H([0]).matrix())

    def inverse(self) -> Instruction:
        return self.copy()


class CRZ(Gate):
    """Controlled-RZ(theta); qubits = (control, target)."""

    num_qubits = 2
    num_parameters = 1

    def matrix(self) -> np.ndarray:
        (theta,) = self.bound_parameters()
        return _controlled(RZ([0], [theta]).matrix())

    def inverse(self) -> Instruction:
        return CRZ(self.qubits, [_negate(self.parameters[0])])


class CPhase(Gate):
    """Controlled phase gate ``diag(1, 1, 1, e^{i theta})``; symmetric."""

    num_qubits = 2
    num_parameters = 1

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__(qubits, parameters)
        self.name = "CPHASE"

    def matrix(self) -> np.ndarray:
        (theta,) = self.bound_parameters()
        mat = np.eye(4, dtype=complex)
        mat[3, 3] = cmath.exp(1j * theta)
        return mat

    def inverse(self) -> Instruction:
        return CPhase(self.qubits, [_negate(self.parameters[0])])


class Swap(Gate):
    """SWAP gate."""

    num_qubits = 2

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__(qubits, parameters)
        self.name = "SWAP"

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )

    def inverse(self) -> Instruction:
        return self.copy()


class ISwap(Gate):
    """iSWAP gate."""

    num_qubits = 2

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__(qubits, parameters)
        self.name = "ISWAP"

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
        )


# ---------------------------------------------------------------------------
# Three-qubit gates
# ---------------------------------------------------------------------------


class CCX(Gate):
    """Toffoli gate; qubits = (control0, control1, target)."""

    num_qubits = 3

    def matrix(self) -> np.ndarray:
        # Basis order |q2 q1 q0>; controls are q0, q1 (first two listed).
        mat = np.eye(8, dtype=complex)
        # states with q0=1, q1=1: indices 3 (q2=0) and 7 (q2=1)
        mat[np.ix_([3, 7], [3, 7])] = X([0]).matrix()
        return mat

    def inverse(self) -> Instruction:
        return self.copy()


class CSwap(Gate):
    """Fredkin gate; qubits = (control, target0, target1)."""

    num_qubits = 3

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__(qubits, parameters)
        self.name = "CSWAP"

    def matrix(self) -> np.ndarray:
        mat = np.eye(8, dtype=complex)
        # control = q0 (LSB).  Swap q1 and q2 when q0 = 1:
        # |q2 q1 q0> with q0=1: 1(001) 3(011) 5(101) 7(111)
        # swap q1<->q2 exchanges 011 <-> 101, i.e. indices 3 and 5.
        mat[3, 3] = 0
        mat[5, 5] = 0
        mat[3, 5] = 1
        mat[5, 3] = 1
        return mat

    def inverse(self) -> Instruction:
        return self.copy()


# ---------------------------------------------------------------------------
# Matrix-defined gates (used by Shor's modular-arithmetic kernels)
# ---------------------------------------------------------------------------


class UnitaryGate(Instruction):
    """A gate defined directly by a unitary matrix over its qubits."""

    num_qubits = 0  # variable
    num_parameters = 0

    def __init__(self, matrix: np.ndarray, qubits: Sequence[int], name: str = "UNITARY"):
        matrix = np.asarray(matrix, dtype=complex)
        n = len(tuple(qubits))
        if matrix.shape != (2**n, 2**n):
            raise InvalidGateError(
                f"unitary matrix shape {matrix.shape} does not match {n} qubit(s)"
            )
        if not np.allclose(matrix @ matrix.conj().T, np.eye(2**n), atol=1e-9):
            raise InvalidGateError("matrix supplied to UnitaryGate is not unitary")
        self._matrix = matrix
        super().__init__(name, qubits)

    def _validate(self) -> None:
        if any(q < 0 for q in self.qubits):
            raise InvalidGateError("qubit indices must be non-negative")
        if len(set(self.qubits)) != len(self.qubits):
            raise InvalidGateError("duplicate qubit indices")

    def matrix(self) -> np.ndarray:
        return self._matrix

    def inverse(self) -> Instruction:
        return UnitaryGate(self._matrix.conj().T, self.qubits, name=f"{self.name}_DG")

    def to_xasm(self) -> str:
        args = ", ".join(f"q[{q}]" for q in self.qubits)
        return f"// matrix gate {self.name}({args});"


class PermutationGate(UnitaryGate):
    """A classical reversible permutation of basis states.

    Used to implement the controlled modular-multiplication unitaries in the
    Shor period-finding kernel: the permutation maps basis index ``x`` to
    ``perm[x]`` over the qubits it acts on.
    """

    def __init__(self, permutation: Sequence[int], qubits: Sequence[int], name: str = "PERM"):
        perm = list(int(p) for p in permutation)
        dim = len(perm)
        n = len(tuple(qubits))
        if dim != 2**n:
            raise InvalidGateError(
                f"permutation length {dim} does not match {n} qubit(s)"
            )
        if sorted(perm) != list(range(dim)):
            raise InvalidGateError("permutation must be a bijection over basis states")
        matrix = np.zeros((dim, dim), dtype=complex)
        for src, dst in enumerate(perm):
            matrix[dst, src] = 1.0
        self.permutation = tuple(perm)
        super().__init__(matrix, qubits, name=name)


# ---------------------------------------------------------------------------
# Non-unitary instructions
# ---------------------------------------------------------------------------


class Measure(Instruction):
    """Computational-basis measurement of a single qubit."""

    num_qubits = 1

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__("MEASURE", qubits, parameters)

    def inverse(self) -> Instruction:
        raise InvalidGateError("MEASURE is not invertible")


class Reset(Instruction):
    """Reset a qubit to |0>."""

    num_qubits = 1

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__("RESET", qubits, parameters)

    def inverse(self) -> Instruction:
        raise InvalidGateError("RESET is not invertible")


class Barrier(Instruction):
    """Scheduling barrier over an arbitrary set of qubits (no-op in simulation)."""

    num_qubits = 0  # variable

    def __init__(self, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()):
        super().__init__("BARRIER", qubits, parameters)

    def _validate(self) -> None:
        if any(q < 0 for q in self.qubits):
            raise InvalidGateError("qubit indices must be non-negative")

    def inverse(self) -> Instruction:
        return self.copy()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Maps canonical mnemonics and aliases to gate classes.
GATE_REGISTRY: Mapping[str, type] = {
    "I": Identity,
    "ID": Identity,
    "H": H,
    "X": X,
    "NOT": X,
    "Y": Y,
    "Z": Z,
    "S": S,
    "SDG": Sdg,
    "T": T,
    "TDG": Tdg,
    "RX": RX,
    "RY": RY,
    "RZ": RZ,
    "U": U3,
    "U3": U3,
    "CX": CX,
    "CNOT": CX,
    "CY": CY,
    "CZ": CZ,
    "CH": CH,
    "CRZ": CRZ,
    "CPHASE": CPhase,
    "CP": CPhase,
    "SWAP": Swap,
    "ISWAP": ISwap,
    "CCX": CCX,
    "TOFFOLI": CCX,
    "CCNOT": CCX,
    "CSWAP": CSwap,
    "FREDKIN": CSwap,
    "MEASURE": Measure,
    "MZ": Measure,
    "RESET": Reset,
    "BARRIER": Barrier,
}


def create_gate(
    name: str, qubits: Sequence[int], parameters: Sequence[ParameterValue] = ()
) -> Instruction:
    """Instantiate a gate by (case-insensitive) name from the registry.

    Raises :class:`InvalidGateError` for unknown names.
    """
    cls = GATE_REGISTRY.get(str(name).upper())
    if cls is None:
        raise InvalidGateError(f"unknown gate {name!r}")
    return cls(qubits, parameters)


def _negate(value: ParameterValue) -> ParameterValue:
    """Negate a parameter, keeping symbols symbolic."""
    if isinstance(value, (int, float)):
        return -float(value)
    return -value
