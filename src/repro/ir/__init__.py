"""Intermediate representation (IR) for quantum kernels.

This subpackage is the Python analogue of XACC's IR layer: quantum kernels
compile down to a :class:`~repro.ir.composite.CompositeInstruction` (a
circuit) made of :class:`~repro.ir.instruction.Instruction` objects.  The IR
is backend-agnostic; accelerators in :mod:`repro.runtime` consume it.

Public surface:

* :class:`Parameter` / :class:`ParameterExpression` — symbolic kernel
  arguments (used by variational ansatz kernels).
* Gate classes (``H``, ``CX``, ``RY`` ...) and the :data:`GATE_REGISTRY`.
* :class:`CompositeInstruction` (aliased as :class:`Circuit`).
* :class:`CircuitBuilder` — fluent construction API.
* Transformation passes under :mod:`repro.ir.transforms`.
"""

from .parameter import Parameter, ParameterExpression
from .instruction import Instruction
from .gates import (
    GATE_REGISTRY,
    Gate,
    Identity,
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    T,
    Tdg,
    RX,
    RY,
    RZ,
    U3,
    CX,
    CY,
    CZ,
    CH,
    CRZ,
    CPhase,
    Swap,
    ISwap,
    CCX,
    CSwap,
    PermutationGate,
    UnitaryGate,
    Measure,
    Reset,
    Barrier,
    create_gate,
)
from .composite import CompositeInstruction, Circuit
from .builder import CircuitBuilder
from .visitor import InstructionVisitor
from .serialization import circuit_to_dict, circuit_from_dict, circuit_to_json, circuit_from_json

__all__ = [
    "Parameter",
    "ParameterExpression",
    "Instruction",
    "Gate",
    "GATE_REGISTRY",
    "Identity",
    "H",
    "X",
    "Y",
    "Z",
    "S",
    "Sdg",
    "T",
    "Tdg",
    "RX",
    "RY",
    "RZ",
    "U3",
    "CX",
    "CY",
    "CZ",
    "CH",
    "CRZ",
    "CPhase",
    "Swap",
    "ISwap",
    "CCX",
    "CSwap",
    "PermutationGate",
    "UnitaryGate",
    "Measure",
    "Reset",
    "Barrier",
    "create_gate",
    "CompositeInstruction",
    "Circuit",
    "CircuitBuilder",
    "InstructionVisitor",
    "circuit_to_dict",
    "circuit_from_dict",
    "circuit_to_json",
    "circuit_from_json",
]
