"""JSON (de)serialization of circuits.

Circuits are converted to plain dictionaries so they can be persisted,
shipped to the simulated remote accelerator, or compared in tests.  Symbolic
parameters are stored as ``{"parameter": name, "scale": s, "offset": o}``;
matrix-defined gates store their matrices as nested ``[real, imag]`` pairs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from ..exceptions import IRError
from .composite import CompositeInstruction
from .gates import GATE_REGISTRY, PermutationGate, UnitaryGate, create_gate
from .instruction import Instruction
from .parameter import Parameter, ParameterExpression

__all__ = [
    "circuit_to_dict",
    "circuit_from_dict",
    "circuit_to_json",
    "circuit_from_json",
    "circuit_content_hash",
    "instruction_to_dict",
    "instruction_from_dict",
]


def _param_to_obj(param: Any) -> Any:
    if isinstance(param, (int, float)):
        return float(param)
    if isinstance(param, Parameter):
        return {"parameter": param.name, "scale": 1.0, "offset": 0.0}
    if isinstance(param, ParameterExpression):
        return {"parameter": param.parameter.name, "scale": param.scale, "offset": param.offset}
    raise IRError(f"cannot serialize parameter of type {type(param).__name__}")


def _param_from_obj(obj: Any) -> Any:
    if isinstance(obj, (int, float)):
        return float(obj)
    if isinstance(obj, dict) and "parameter" in obj:
        expr = ParameterExpression(
            Parameter(obj["parameter"]), obj.get("scale", 1.0), obj.get("offset", 0.0)
        )
        if expr.scale == 1.0 and expr.offset == 0.0:
            return expr.parameter
        return expr
    raise IRError(f"cannot deserialize parameter object {obj!r}")


def instruction_to_dict(instruction: Instruction) -> dict:
    """Convert one instruction to a JSON-safe dictionary."""
    data: dict[str, Any] = {
        "name": instruction.name,
        "qubits": list(instruction.qubits),
        "parameters": [_param_to_obj(p) for p in instruction.parameters],
    }
    if isinstance(instruction, PermutationGate):
        data["type"] = "permutation"
        data["permutation"] = list(instruction.permutation)
    elif isinstance(instruction, UnitaryGate):
        data["type"] = "unitary"
        matrix = instruction.matrix()
        data["matrix"] = [[[float(v.real), float(v.imag)] for v in row] for row in matrix]
    else:
        data["type"] = "gate"
    return data


def instruction_from_dict(data: dict) -> Instruction:
    """Rebuild an instruction from :func:`instruction_to_dict` output."""
    kind = data.get("type", "gate")
    qubits = [int(q) for q in data["qubits"]]
    if kind == "permutation":
        return PermutationGate(data["permutation"], qubits, name=data.get("name", "PERM"))
    if kind == "unitary":
        matrix = np.array(
            [[complex(re, im) for re, im in row] for row in data["matrix"]], dtype=complex
        )
        return UnitaryGate(matrix, qubits, name=data.get("name", "UNITARY"))
    name = data["name"]
    if name.upper() not in GATE_REGISTRY:
        raise IRError(f"unknown gate name {name!r} in serialized circuit")
    parameters = [_param_from_obj(p) for p in data.get("parameters", [])]
    return create_gate(name, qubits, parameters)


def circuit_to_dict(circuit: CompositeInstruction) -> dict:
    """Convert a circuit to a JSON-safe dictionary."""
    return {
        "name": circuit.name,
        "n_qubits": circuit.n_qubits,
        "instructions": [instruction_to_dict(inst) for inst in circuit],
    }


def circuit_from_dict(data: dict) -> CompositeInstruction:
    """Rebuild a circuit from :func:`circuit_to_dict` output."""
    circuit = CompositeInstruction(data.get("name", "circuit"), data.get("n_qubits"))
    for inst in data.get("instructions", []):
        circuit.add(instruction_from_dict(inst))
    return circuit


def circuit_to_json(circuit: CompositeInstruction, **json_kwargs: Any) -> str:
    """Serialize a circuit to a JSON string."""
    return json.dumps(circuit_to_dict(circuit), **json_kwargs)


def circuit_from_json(text: str) -> CompositeInstruction:
    """Deserialize a circuit from a JSON string."""
    return circuit_from_dict(json.loads(text))


def circuit_content_hash(circuit: CompositeInstruction, include_name: bool = False) -> str:
    """SHA-256 over the circuit's canonical JSON form.

    By default the circuit *name* is excluded: ``bell`` and ``bell_copy``
    containing identical instructions are the same work.  This is the one
    canonical content identity shared by the job broker's result cache
    (:mod:`repro.service.keys`) and the simulator's execution-plan cache
    (:mod:`repro.simulator.plan_cache`).
    """
    payload = circuit_to_dict(circuit)
    if not include_name:
        payload.pop("name", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
