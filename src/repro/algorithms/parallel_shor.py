"""Parallel Shor driver (Algorithm 2 of the paper).

Algorithm 2 turns the per-base attempts of Shor's algorithm into
asynchronous tasks: each candidate base ``a`` gets its own quantum-classical
task launched with ``async``.  Here those tasks are launched with
:func:`repro.core.threading_api.qcor_async`, so each one initialises its own
per-thread QPU instance — exactly the scenario the thread-safety work
enables.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..core.threading_api import TaskGroup
from .shor import ShorResult, run_order_finding

__all__ = ["parallel_shor_factor"]


def _choose_bases(N: int, how_many: int, rng: np.random.Generator) -> list[int]:
    """Pick ``how_many`` distinct bases coprime to ``N`` (or trivial factors)."""
    candidates = [a for a in range(2, N - 1)]
    rng.shuffle(candidates)
    return candidates[:how_many]


def parallel_shor_factor(
    N: int,
    n_tasks: int = 2,
    shots: int = 10,
    bases: Sequence[int] | None = None,
    accelerator: str | None = None,
    seed: int | None = None,
) -> ShorResult:
    """Factor ``N`` by running ``n_tasks`` order-finding tasks concurrently.

    Each task uses its own base ``a``.  Bases whose gcd with ``N`` is already
    non-trivial short-circuit without a kernel launch (Algorithm 1, line 8).
    The first successful task's result is returned; if none succeeds, the
    result of the last task is returned so callers can inspect its period
    estimate.
    """
    if N < 4:
        raise ConfigurationError(f"N must be a composite number >= 4, got {N}")
    if n_tasks < 1:
        raise ConfigurationError(f"n_tasks must be at least 1, got {n_tasks}")
    if N % 2 == 0:
        return ShorResult(N=N, a=2, factors=(2, N // 2))

    rng = np.random.default_rng(seed)
    chosen = list(bases) if bases is not None else _choose_bases(N, n_tasks, rng)
    if not chosen:
        raise ConfigurationError(f"no usable bases available for N={N}")

    # Classical short-circuit for lucky bases.
    for a in chosen:
        common = math.gcd(int(a), N)
        if common > 1:
            return ShorResult(N=N, a=int(a), factors=(common, N // common))

    with TaskGroup(accelerator=accelerator) as group:
        for a in chosen:
            group.launch(run_order_finding, N, int(a), shots)
    results: list[ShorResult] = group.results()

    for result in results:
        if result.succeeded:
            return result
    return results[-1]
