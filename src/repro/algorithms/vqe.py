r"""Variational quantum eigensolver: the deuteron example (Listing 3).

The deuteron N=2 Hamiltonian used by QCOR's canonical VQE example is

.. math::

    H = 5.907 - 2.1433\,X_0 X_1 - 2.1433\,Y_0 Y_1 + 0.21829\,Z_0 - 6.125\,Z_1

with the one-parameter ansatz ``X(q0); Ry(q1, theta); CX(q1, q0)``.  Its
exact ground-state energy is about ``-1.74886`` Hartree, which the test
suite checks the optimiser reaches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.objective import createObjectiveFunction
from ..core.optimizer import createOptimizer
from ..ir.builder import CircuitBuilder
from ..ir.composite import CompositeInstruction
from ..ir.parameter import Parameter
from ..operators.pauli import PauliOperator, X, Y, Z

__all__ = ["deuteron_hamiltonian", "deuteron_ansatz_circuit", "run_deuteron_vqe", "VQEResult"]


def deuteron_hamiltonian() -> PauliOperator:
    """The deuteron Hamiltonian of Listing 3."""
    return (
        5.907
        - 2.1433 * X(0) * X(1)
        - 2.1433 * Y(0) * Y(1)
        + 0.21829 * Z(0)
        - 6.125 * Z(1)
    )


def deuteron_ansatz_circuit(theta: float | Parameter | None = None) -> CompositeInstruction:
    """The one-parameter ansatz of Listing 3 (symbolic when ``theta`` is None)."""
    angle = theta if theta is not None else Parameter("theta")
    return (
        CircuitBuilder(2, name="deuteron_ansatz")
        .x(0)
        .ry(1, angle)
        .cx(1, 0)
        .build()
    )


@dataclass
class VQEResult:
    """Outcome of a VQE run."""

    optimal_energy: float
    optimal_parameters: np.ndarray
    exact_ground_energy: float
    function_evaluations: int
    converged: bool

    @property
    def error(self) -> float:
        """Absolute deviation from the exact ground-state energy."""
        return abs(self.optimal_energy - self.exact_ground_energy)


def run_deuteron_vqe(
    optimizer_name: str = "l-bfgs",
    gradient_strategy: str = "central",
    exact: bool = True,
    shots: int | None = None,
    initial_theta: float = 0.0,
) -> VQEResult:
    """Run the Listing 3 VQE end-to-end and return the optimisation outcome.

    ``exact=True`` evaluates energies from the state vector (deterministic);
    ``exact=False`` samples ``shots`` measurements per Pauli term, matching a
    real device workflow (use a derivative-free or SPSA optimiser there).
    """
    hamiltonian = deuteron_hamiltonian()
    ansatz = deuteron_ansatz_circuit()
    objective = createObjectiveFunction(
        ansatz,
        hamiltonian,
        2,
        n_parameters=1,
        options={
            "gradient-strategy": gradient_strategy,
            "step": 1e-3,
            "exact": exact,
            "shots": shots,
        },
    )
    optimizer = createOptimizer("nlopt", {"nlopt-optimizer": optimizer_name})
    result = optimizer.optimize(objective, initial_parameters=[initial_theta])
    exact_energy = hamiltonian.ground_state_energy(2)
    return VQEResult(
        optimal_energy=float(result.optimal_value),
        optimal_parameters=result.optimal_parameters,
        exact_ground_energy=float(exact_energy),
        function_evaluations=result.function_evaluations,
        converged=result.converged,
    )
