"""GHZ-state preparation kernels.

GHZ states generalise the Bell pair to ``n`` qubits and are used by the test
suite as a scaling knob (the state size grows while the structure stays
trivial to verify: counts must concentrate on the all-zeros and all-ones
bitstrings).
"""

from __future__ import annotations

from ..ir.builder import CircuitBuilder
from ..ir.composite import CompositeInstruction
from ..runtime.qreg import qreg

__all__ = ["ghz_circuit", "run_ghz"]


def ghz_circuit(n_qubits: int, measure: bool = True) -> CompositeInstruction:
    """H on qubit 0 followed by a CX ladder; optionally measure all qubits."""
    builder = CircuitBuilder(n_qubits, name=f"ghz{n_qubits}")
    builder.h(0)
    for target in range(1, n_qubits):
        builder.cx(target - 1, target)
    if measure:
        builder.measure_all()
    return builder.build()


def run_ghz(n_qubits: int, shots: int | None = None, register: qreg | None = None) -> dict[str, int]:
    """Allocate (if needed), execute the GHZ kernel and return the counts."""
    from ..core.api import execute_circuit, qalloc

    q = register if register is not None else qalloc(n_qubits)
    return execute_circuit(ghz_circuit(n_qubits), q, shots=shots)
