"""QAOA for MaxCut.

QAOA is the other variational algorithm QCOR advertises (Section III of the
paper).  The MaxCut cost Hamiltonian for a graph ``G = (V, E)`` with edge
weights ``w_ij`` is ``sum_ij w_ij (1 - Z_i Z_j) / 2``; QAOA alternates
``p`` layers of cost evolution (``CPhase``/``RZ`` structure) and transverse
mixing (``RX``).  The driver optimises the ``2p`` angles classically and
reports the best sampled cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

from ..core.objective import createObjectiveFunction
from ..core.optimizer import createOptimizer
from ..exceptions import ConfigurationError
from ..ir.builder import CircuitBuilder
from ..ir.composite import CompositeInstruction
from ..operators.pauli import PauliOperator, PauliTerm, Z
from ..simulator.statevector import StateVector

__all__ = ["maxcut_hamiltonian", "qaoa_circuit", "run_qaoa_maxcut", "QAOAResult", "cut_value"]


def _edges_with_weights(graph: nx.Graph) -> list[tuple[int, int, float]]:
    edges = []
    for u, v, data in graph.edges(data=True):
        edges.append((int(u), int(v), float(data.get("weight", 1.0))))
    return edges


def maxcut_hamiltonian(graph: nx.Graph) -> PauliOperator:
    """Cost Hamiltonian whose *minimum* corresponds to the maximum cut.

    We minimise ``sum_ij w_ij (Z_i Z_j - 1) / 2`` (each cut edge contributes
    ``-w_ij``), so lower energies mean larger cuts.
    """
    if graph.number_of_nodes() == 0:
        raise ConfigurationError("graph must have at least one node")
    terms: list[PauliTerm] = []
    for u, v, weight in _edges_with_weights(graph):
        terms.append(0.5 * weight * Z(u) * Z(v))
        terms.append(PauliTerm({}, -0.5 * weight))
    return PauliOperator(terms)


def cut_value(graph: nx.Graph, assignment: str) -> float:
    """Weight of the cut defined by ``assignment`` (character i = side of node i)."""
    total = 0.0
    for u, v, weight in _edges_with_weights(graph):
        if assignment[u] != assignment[v]:
            total += weight
    return total


def qaoa_circuit(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    measure: bool = False,
) -> CompositeInstruction:
    """Build the ``p``-layer QAOA state-preparation circuit."""
    if len(gammas) != len(betas):
        raise ConfigurationError("gammas and betas must have the same length")
    if len(gammas) == 0:
        raise ConfigurationError("QAOA needs at least one layer")
    n = graph.number_of_nodes()
    builder = CircuitBuilder(n, name=f"qaoa_p{len(gammas)}")
    for qubit in range(n):
        builder.h(qubit)
    for gamma, beta in zip(gammas, betas):
        for u, v, weight in _edges_with_weights(graph):
            # exp(-i gamma w Z_u Z_v / 2) via CX - RZ - CX.
            builder.cx(u, v)
            builder.rz(v, float(gamma) * weight)
            builder.cx(u, v)
        for qubit in range(n):
            builder.rx(qubit, 2.0 * float(beta))
    circuit = builder.build()
    if measure:
        for qubit in range(n):
            builder.measure(qubit)
    return circuit


@dataclass
class QAOAResult:
    """Outcome of a QAOA MaxCut run."""

    best_bitstring: str
    best_cut_value: float
    optimal_angles: np.ndarray
    optimal_energy: float
    max_possible_cut: float

    @property
    def approximation_ratio(self) -> float:
        if self.max_possible_cut == 0:
            return 1.0
        return self.best_cut_value / self.max_possible_cut


def _brute_force_maxcut(graph: nx.Graph) -> float:
    n = graph.number_of_nodes()
    if n > 16:
        raise ConfigurationError("brute-force MaxCut reference limited to 16 nodes")
    best = 0.0
    for mask in range(1 << n):
        assignment = "".join("1" if (mask >> i) & 1 else "0" for i in range(n))
        best = max(best, cut_value(graph, assignment))
    return best


def run_qaoa_maxcut(
    graph: nx.Graph,
    p: int = 1,
    optimizer_name: str = "nelder-mead",
    seed: int | None = None,
) -> QAOAResult:
    """Optimise a depth-``p`` QAOA for MaxCut on ``graph`` and sample the best cut."""
    if p < 1:
        raise ConfigurationError(f"p must be at least 1, got {p}")
    n = graph.number_of_nodes()
    hamiltonian = maxcut_hamiltonian(graph)
    rng = np.random.default_rng(seed)

    def ansatz_factory(_n_qubits: int, *angles: float) -> CompositeInstruction:
        gammas = angles[:p]
        betas = angles[p:]
        return qaoa_circuit(graph, gammas, betas)

    objective = createObjectiveFunction(
        ansatz_factory, hamiltonian, n, n_parameters=2 * p, options={"exact": True}
    )
    optimizer = createOptimizer("nlopt", {"nlopt-optimizer": optimizer_name, "maxiter": 300})
    initial = rng.uniform(0.1, 0.5, size=2 * p)
    result = optimizer.optimize(objective, initial_parameters=initial)

    # Sample the optimised state exactly and pick the most likely cut.
    angles = np.asarray(result.optimal_parameters, dtype=float)
    state = StateVector(n)
    state.apply_circuit(qaoa_circuit(graph, angles[:p], angles[p:]))
    probabilities = state.probabilities()
    best_index = int(np.argmax(probabilities))
    bitstring = "".join("1" if (best_index >> i) & 1 else "0" for i in range(n))
    return QAOAResult(
        best_bitstring=bitstring,
        best_cut_value=cut_value(graph, bitstring),
        optimal_angles=angles,
        optimal_energy=float(result.optimal_value),
        max_possible_cut=_brute_force_maxcut(graph),
    )
