"""Quantum Fourier transform circuits.

Used by the Shor period-finding kernel (its final step is an inverse QFT on
the counting register).  Qubit ``qubits[0]`` is treated as the least
significant bit of the transformed integer.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..exceptions import IRError
from ..ir.builder import CircuitBuilder
from ..ir.composite import CompositeInstruction

__all__ = ["qft_circuit", "inverse_qft_circuit"]


def qft_circuit(
    qubits: Sequence[int] | int, with_swaps: bool = True, name: str = "qft"
) -> CompositeInstruction:
    """QFT over ``qubits`` (a list of indices, or a count meaning ``range(n)``)."""
    indices = list(range(qubits)) if isinstance(qubits, int) else [int(q) for q in qubits]
    if not indices:
        raise IRError("QFT requires at least one qubit")
    n = len(indices)
    builder = CircuitBuilder(name=name)
    # Standard textbook construction, most significant qubit first.
    for i in range(n - 1, -1, -1):
        builder.h(indices[i])
        for j in range(i - 1, -1, -1):
            angle = math.pi / (2 ** (i - j))
            builder.cphase(indices[j], indices[i], angle)
    if with_swaps:
        for i in range(n // 2):
            builder.swap(indices[i], indices[n - 1 - i])
    return builder.build()


def inverse_qft_circuit(
    qubits: Sequence[int] | int, with_swaps: bool = True, name: str = "iqft"
) -> CompositeInstruction:
    """Inverse QFT (the adjoint of :func:`qft_circuit`)."""
    circuit = qft_circuit(qubits, with_swaps=with_swaps, name=name)
    inverse = circuit.inverse()
    inverse.name = name
    return inverse
