"""Shor's algorithm: the period-finding kernel and the classical driver.

This is the workload behind Figures 4 and 5 of the paper.  The kernel
follows the standard order-finding construction (the paper cites
Beauregard's 2n+3-qubit circuit; we use the semantically equivalent
"controlled modular multiplication as a permutation" construction, which is
exact for the small ``N`` the paper evaluates and keeps the gate count —
and therefore the simulated state size — in the same regime):

* a *work register* of ``n = ceil(log2(N))`` qubits initialised to ``|1>``;
* a *counting register* of ``t = 2n`` qubits put into uniform superposition;
* for each counting qubit ``j``, a controlled permutation implementing
  ``|y> -> |a^(2^j) * y mod N>`` on the work register;
* an inverse QFT on the counting register followed by its measurement.

The classical side implements Algorithm 1 of the paper: repeatedly choose a
random base ``a``, return early if ``gcd(a, N)`` is already a factor,
otherwise estimate the order ``r`` of ``a`` from the kernel's measurement
statistics via continued fractions and derive factors from
``gcd(a^(r/2) +- 1, N)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable

import numpy as np

from ..exceptions import ConfigurationError, ExecutionError
from ..ir.builder import CircuitBuilder
from ..ir.composite import CompositeInstruction
from ..ir.gates import Measure
from ..runtime.qreg import qreg
from .qft import inverse_qft_circuit

__all__ = [
    "ShorResult",
    "modular_exponentiation_permutation",
    "period_finding_circuit",
    "continued_fraction_period",
    "run_order_finding",
    "shor_task",
    "shor_factor",
]


# ---------------------------------------------------------------------------
# Kernel construction
# ---------------------------------------------------------------------------


def _validate_modulus_base(N: int, a: int) -> None:
    if N < 3:
        raise ConfigurationError(f"N must be at least 3, got {N}")
    if not 1 < a < N:
        raise ConfigurationError(f"base a must satisfy 1 < a < N, got a={a}, N={N}")
    if math.gcd(a, N) != 1:
        raise ConfigurationError(
            f"base a={a} shares a factor with N={N}; order finding requires gcd(a, N) = 1"
        )


def modular_exponentiation_permutation(a: int, power: int, N: int, n_bits: int) -> list[int]:
    """Permutation of ``2**n_bits`` basis states mapping ``y`` to ``a^power * y mod N``.

    Values ``y >= N`` are left untouched (they never occur when the work
    register starts in ``|1>``, but the map must still be a bijection to be
    a valid gate).
    """
    _validate_modulus_base(N, a % N if a % N > 1 else a)
    if n_bits < math.ceil(math.log2(N)):
        raise ConfigurationError(
            f"n_bits={n_bits} cannot represent values modulo N={N}"
        )
    multiplier = pow(a, power, N)
    dim = 1 << n_bits
    permutation = list(range(dim))
    for y in range(N):
        permutation[y] = (multiplier * y) % N
    # Bijectivity check (multiplication by a unit modulo N permutes Z_N).
    if sorted(permutation) != list(range(dim)):
        raise ExecutionError("modular multiplication did not produce a permutation")
    return permutation


def period_finding_circuit(
    N: int, a: int, counting_qubits: int | None = None, name: str | None = None
) -> CompositeInstruction:
    """Order-finding kernel for ``a`` modulo ``N``.

    Layout: work register on qubits ``0 .. n-1`` (initialised to ``|1>``),
    counting register on qubits ``n .. n+t-1``.  Only the counting register
    is measured.
    """
    _validate_modulus_base(N, a)
    n = math.ceil(math.log2(N))
    t = counting_qubits if counting_qubits is not None else 2 * n
    if t < 1:
        raise ConfigurationError(f"counting register needs at least 1 qubit, got {t}")
    total = n + t
    builder = CircuitBuilder(total, name=name or f"shor_kernel_N{N}_a{a}")
    # Work register starts in |1>.
    builder.x(0)
    # Counting register in uniform superposition.
    counting = list(range(n, n + t))
    for qubit in counting:
        builder.h(qubit)
    # Controlled modular multiplications.  The permutation acts on
    # (control, work_0 ... work_{n-1}): control is local bit 0, the work
    # value occupies local bits 1..n.
    for j, control in enumerate(counting):
        permutation = modular_exponentiation_permutation(a, 1 << j, N, n)
        dim = 1 << (n + 1)
        controlled = list(range(dim))
        for y, mapped in enumerate(permutation):
            controlled[1 + (y << 1)] = 1 + (mapped << 1)
        builder.permutation(
            controlled, [control] + list(range(n)), name=f"CMULT_a{a}p{1 << j}"
        )
    # Inverse QFT over the counting register, then measure it.
    circuit = builder.build()
    circuit.add(inverse_qft_circuit(counting))
    for qubit in counting:
        circuit.add(Measure([qubit]))
    return circuit


# ---------------------------------------------------------------------------
# Classical post-processing
# ---------------------------------------------------------------------------


def continued_fraction_period(measured: int, t_bits: int, N: int) -> int | None:
    """Estimate the order ``r`` from a counting-register measurement.

    ``measured / 2**t_bits`` is close to ``k / r`` for a random ``k``; the
    continued-fraction convergent with the largest denominator below ``N``
    is the candidate period.  Returns ``None`` for the uninformative
    ``measured == 0`` outcome.
    """
    if t_bits < 1:
        raise ConfigurationError("t_bits must be at least 1")
    if measured == 0:
        return None
    fraction = Fraction(measured, 1 << t_bits).limit_denominator(N - 1)
    r = fraction.denominator
    return r if r >= 1 else None


def _counts_to_phases(counts: dict[str, int], t_bits: int) -> list[tuple[int, int]]:
    """Convert counting-register bitstrings to integers (with their counts).

    The execution layer reports measured qubits in ascending qubit order and
    the counting register occupies the highest qubit indices, so character
    ``i`` of the bitstring is counting bit ``i`` (LSB first).
    """
    phases: list[tuple[int, int]] = []
    for bitstring, count in counts.items():
        if len(bitstring) != t_bits:
            raise ExecutionError(
                f"expected {t_bits}-bit measurement strings, got {bitstring!r}"
            )
        value = sum((1 << i) for i, bit in enumerate(bitstring) if bit == "1")
        phases.append((value, count))
    return phases


@dataclass
class ShorResult:
    """Outcome of one Shor task (one base ``a``)."""

    N: int
    a: int
    factors: tuple[int, ...] = ()
    period: int | None = None
    #: Raw kernel measurement histogram (counting register integers).
    phase_counts: dict[int, int] = field(default_factory=dict)
    #: Number of kernel shots used.
    shots: int = 0

    @property
    def succeeded(self) -> bool:
        return bool(self.factors)


def run_order_finding(
    N: int,
    a: int,
    shots: int = 10,
    counting_qubits: int | None = None,
    register: qreg | None = None,
) -> ShorResult:
    """Execute the period-finding kernel and post-process the measurements.

    This is the quantum-classical task the paper calls SHOR(N, a): it runs
    the kernel ``shots`` times, extracts a period candidate from each
    measured phase, keeps the smallest consistent period (verifying
    ``a^r = 1 mod N``) and, when the period is usable, derives factors.
    """
    _validate_modulus_base(N, a)
    from ..core.api import execute_circuit, qalloc

    n = math.ceil(math.log2(N))
    t = counting_qubits if counting_qubits is not None else 2 * n
    circuit = period_finding_circuit(N, a, counting_qubits=t)
    q = register if register is not None else qalloc(n + t)
    counts = execute_circuit(circuit, q, shots=shots)
    phases = _counts_to_phases(counts, t)

    result = ShorResult(N=N, a=a, shots=shots, phase_counts=dict(phases))
    candidate_periods: list[int] = []
    for value, _count in phases:
        r = continued_fraction_period(value, t, N)
        if r is None:
            continue
        # The convergent denominator may be a divisor of the true period;
        # try small multiples as well.
        for multiple in range(1, 5):
            candidate = r * multiple
            if candidate >= N:
                break
            if pow(a, candidate, N) == 1:
                candidate_periods.append(candidate)
                break
    if not candidate_periods:
        return result
    period = min(candidate_periods)
    result.period = period
    if period % 2 == 1:
        return result
    half_power = pow(a, period // 2, N)
    if half_power == N - 1:
        return result
    factors = set()
    for candidate in (math.gcd(half_power - 1, N), math.gcd(half_power + 1, N)):
        if 1 < candidate < N:
            factors.add(candidate)
    result.factors = tuple(sorted(factors))
    return result


#: Alias emphasising the task-level-parallelism framing of the paper.
shor_task = run_order_finding


def shor_factor(
    N: int,
    shots: int = 10,
    max_attempts: int = 20,
    rng: np.random.Generator | None = None,
    bases: Iterable[int] | None = None,
) -> ShorResult:
    """Full Shor driver (Algorithm 1 of the paper).

    Repeatedly chooses a base (randomly, or from ``bases`` when provided),
    short-circuits when ``gcd(a, N)`` already reveals a factor, and otherwise
    runs the quantum order-finding task.  Returns the first successful
    :class:`ShorResult` or the last attempted one when every attempt fails.
    """
    if N < 4:
        raise ConfigurationError(f"N must be a composite number >= 4, got {N}")
    if N % 2 == 0:
        return ShorResult(N=N, a=2, factors=(2, N // 2))
    rng = rng or np.random.default_rng()
    base_iterator = iter(bases) if bases is not None else None
    last_result = ShorResult(N=N, a=0)
    for _ in range(max_attempts):
        if base_iterator is not None:
            try:
                a = int(next(base_iterator))
            except StopIteration:
                break
        else:
            a = int(rng.integers(2, N - 1))
        common = math.gcd(a, N)
        if common > 1:
            return ShorResult(N=N, a=a, factors=(common, N // common))
        result = run_order_finding(N, a, shots=shots)
        last_result = result
        if result.succeeded:
            return result
    return last_result
