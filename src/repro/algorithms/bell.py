"""The 2-qubit Bell kernel (Listing 1 of the paper).

Three equivalent entry points are provided so examples and tests can
exercise every front end:

* :func:`bell_circuit` — plain IR construction,
* :data:`bell_kernel` — the ``@qpu`` single-source kernel, and
* :func:`run_bell` — allocate, execute on the calling thread's QPU, return
  the counts (what ``foo()`` does in Listing 4).
"""

from __future__ import annotations

from ..compiler.dsl import CX, H, Measure
from ..compiler.kernel import qpu
from ..ir.builder import CircuitBuilder
from ..ir.composite import CompositeInstruction
from ..runtime.qreg import qreg

__all__ = ["bell_circuit", "bell_kernel", "run_bell"]


def bell_circuit(n_qubits: int = 2) -> CompositeInstruction:
    """Bell/GHZ-style circuit: H on qubit 0, a CX chain, measure everything."""
    builder = CircuitBuilder(n_qubits, name="bell")
    builder.h(0)
    for target in range(1, n_qubits):
        builder.cx(0, target)
    return builder.measure_all().build()


@qpu
def bell_kernel(q) -> None:
    """The Bell kernel exactly as written in the paper's Listing 1."""
    H(q[0])
    CX(q[0], q[1])
    for i in range(q.size()):
        Measure(q[i])


def run_bell(register: qreg | None = None, shots: int | None = None) -> dict[str, int]:
    """Allocate (if needed), run the Bell kernel and return the counts."""
    from ..core.api import qalloc

    q = register if register is not None else qalloc(2)
    return bell_kernel(q, shots=shots)
