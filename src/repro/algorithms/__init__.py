"""Quantum kernels and quantum-classical algorithms used by the paper.

* :mod:`~repro.algorithms.bell` — the 2-qubit Bell kernel (Listing 1,
  Figure 3's workload).
* :mod:`~repro.algorithms.ghz` / :mod:`~repro.algorithms.qft` — building
  blocks (GHZ states, quantum Fourier transform).
* :mod:`~repro.algorithms.shor` — Shor's algorithm: the period-finding
  kernel (Figures 4 and 5's workload) plus the classical driver of
  Algorithm 1.
* :mod:`~repro.algorithms.parallel_shor` — the async parallel driver of
  Algorithm 2.
* :mod:`~repro.algorithms.vqe` — the deuteron VQE of Listing 3.
* :mod:`~repro.algorithms.qaoa` — QAOA for MaxCut (the other variational
  workload QCOR advertises).
"""

from .bell import bell_circuit, bell_kernel, run_bell
from .ghz import ghz_circuit, run_ghz
from .qft import qft_circuit, inverse_qft_circuit
from .shor import (
    ShorResult,
    continued_fraction_period,
    modular_exponentiation_permutation,
    period_finding_circuit,
    run_order_finding,
    shor_factor,
    shor_task,
)
from .parallel_shor import parallel_shor_factor
from .vqe import deuteron_hamiltonian, deuteron_ansatz_circuit, run_deuteron_vqe, VQEResult
from .qaoa import maxcut_hamiltonian, qaoa_circuit, run_qaoa_maxcut, QAOAResult

__all__ = [
    "bell_circuit",
    "bell_kernel",
    "run_bell",
    "ghz_circuit",
    "run_ghz",
    "qft_circuit",
    "inverse_qft_circuit",
    "ShorResult",
    "continued_fraction_period",
    "modular_exponentiation_permutation",
    "period_finding_circuit",
    "run_order_finding",
    "shor_factor",
    "shor_task",
    "parallel_shor_factor",
    "deuteron_hamiltonian",
    "deuteron_ansatz_circuit",
    "run_deuteron_vqe",
    "VQEResult",
    "maxcut_hamiltonian",
    "qaoa_circuit",
    "run_qaoa_maxcut",
    "QAOAResult",
]
