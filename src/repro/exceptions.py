"""Exception hierarchy for the :mod:`repro` programming system.

The hierarchy mirrors the layers of the system:

* IR / compiler errors are raised while building or parsing kernels.
* Runtime errors are raised by the XACC-like substrate (service registry,
  allocation, accelerators).
* Execution errors are raised while a kernel is running on a backend.
* Thread-safety violations are raised (or recorded) by the race detector
  when the legacy, non-thread-safe code paths are exercised concurrently.

Every exception derives from :class:`ReproError` so callers can catch the
whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when an invalid configuration value is supplied."""


# ---------------------------------------------------------------------------
# IR / compiler layer
# ---------------------------------------------------------------------------


class IRError(ReproError):
    """Base class for errors in the intermediate representation layer."""


class InvalidGateError(IRError):
    """Raised when an unknown gate name or malformed gate is used."""


class ParameterBindingError(IRError):
    """Raised when binding symbolic parameters fails (missing/extra values)."""


class CompilationError(ReproError):
    """Raised when compiling a kernel source (XASM / OpenQASM / DSL) fails."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class TransformError(IRError):
    """Raised when an IR transformation pass fails."""


# ---------------------------------------------------------------------------
# Runtime substrate (XACC-like)
# ---------------------------------------------------------------------------


class RuntimeLayerError(ReproError):
    """Base class for errors raised by the runtime substrate."""


class ServiceNotFoundError(RuntimeLayerError):
    """Raised when :func:`get_service` cannot resolve a service name."""


class AllocationError(RuntimeLayerError):
    """Raised when qubit-register allocation fails."""


class AcceleratorError(RuntimeLayerError):
    """Raised by accelerator backends for invalid configuration or state."""


class ServiceOverloadedError(RuntimeLayerError):
    """Raised when the job broker's bounded queue rejects a submission.

    Carries the observed queue depth and the bound so callers implementing
    client-side backoff can size their retry delay.
    """

    def __init__(self, depth: int, max_pending: int):
        self.depth = depth
        self.max_pending = max_pending
        super().__init__(
            f"job queue is full ({depth}/{max_pending} pending); "
            "retry later or use submit() to block for a slot"
        )


class NotInitializedError(RuntimeLayerError):
    """Raised when a thread uses the runtime before calling ``initialize()``.

    The paper requires each user thread to call ``quantum::initialize()`` so
    the runtime can register the thread's QPU instance with the QPUManager.
    This error is the Python analogue of the failure mode a user would hit
    when forgetting that call while ``strict_initialization`` is enabled.
    """


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class ExecutionError(ReproError):
    """Raised when executing a quantum kernel fails."""


class NoiseModelError(ExecutionError):
    """Raised when a noise model is malformed (e.g. non-CPTP channel)."""


# ---------------------------------------------------------------------------
# Job lifecycle (fault-tolerant service tier)
# ---------------------------------------------------------------------------
#
# Every job submitted to the broker resolves in exactly one of these shapes
# (or with a plain success).  All four derive from :class:`ExecutionError`
# so pre-existing ``except ExecutionError`` handlers keep working, while new
# callers can distinguish *why* a job failed — the distinction drives retry
# decisions, circuit-breaker accounting and client-side backoff.  They keep
# single-string constructor signatures so instances survive pickling across
# the process boundary (shard and shm workers raise them too).


class JobCancelled(ExecutionError):
    """Raised when a job was cancelled by the client before it completed.

    Cooperative: execution already in flight checks for cancellation at
    step boundaries and abandons the replay; a worker process is never
    killed to cancel a job.
    """


class DeadlineExceeded(ExecutionError):
    """Raised when a job's deadline passed before it produced a result.

    Checked at queue-dequeue, pre-compile, and per-chunk replay boundaries,
    so even a large mid-flight replay is abandoned promptly — and at result
    reconciliation, so a late result is never served past its deadline.
    """


class AdmissionRejected(ExecutionError):
    """Raised when memory-budget admission control refuses a job.

    Carries the accounting that produced the decision so clients can right-
    size their retry (shrink the job) or their deployment (raise the budget).
    """

    def __init__(
        self,
        message: str,
        *,
        requested_bytes: int = 0,
        budget_bytes: int = 0,
        used_bytes: int = 0,
    ):
        self.requested_bytes = int(requested_bytes)
        self.budget_bytes = int(budget_bytes)
        self.used_bytes = int(used_bytes)
        super().__init__(message)


class WorkerCrashed(ExecutionError):
    """Raised when a worker process died (or broke its pipe) mid-execution.

    The infrastructure-failure shape: the job itself is fine, the
    environment broke.  Retry policies classify this as retryable and
    circuit breakers count it against the lane's health.
    """


class RetryExhausted(ExecutionError):
    """Raised when a retry policy ran out of attempts for a retryable fault.

    The terminal form of the worker-death retry loop: every attempt hit a
    retryable infrastructure failure (dead worker process, broken pool) and
    the budget is spent.  ``attempts`` records how many executions were
    tried; ``__cause__`` carries the last underlying failure.
    """

    def __init__(self, message: str, *, attempts: int = 0):
        self.attempts = int(attempts)
        super().__init__(message)


class OptimizationError(ReproError):
    """Raised when a classical optimizer fails to run."""


# ---------------------------------------------------------------------------
# Thread safety
# ---------------------------------------------------------------------------


class ThreadSafetyViolation(ReproError):
    """Raised when the race detector observes an unsafe concurrent access.

    Only raised when the detector is configured with ``raise_on_race=True``;
    otherwise violations are recorded and can be inspected after the fact,
    which is more useful for tests that *expect* the legacy behaviour to
    race.
    """

    def __init__(self, resource: str, threads: tuple[int, ...] = ()):
        self.resource = resource
        self.threads = tuple(threads)
        detail = f" by threads {list(self.threads)}" if self.threads else ""
        super().__init__(f"unsynchronized concurrent access to {resource!r}{detail}")
