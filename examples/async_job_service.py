"""Async clients on the quantum job broker: ``await service.asubmit(...)``.

The broker's dispatcher runs on threads (and optionally process shards),
but modern service frontends are asyncio event loops.  This example bridges
the two: a single event loop plays eight concurrent "tenants", each
submitting a mix of Bell/GHZ/QFT jobs without ever blocking the loop —
``asubmit`` hops the (possibly backpressured) submit onto a thread, and the
returned :class:`~repro.service.job.JobHandle` is awaitable directly.

Run with::

    PYTHONPATH=src python examples/async_job_service.py
"""

from __future__ import annotations

import asyncio
import time

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.config import set_config
from repro.service import QuantumJobService

TENANTS = 8
JOBS_PER_TENANT = 6


async def tenant(service: QuantumJobService, tenant_id: int) -> dict[str, int]:
    """One async client: submit a burst, then await every histogram."""
    circuits = [bell_circuit(2), ghz_circuit(4), qft_circuit(5)]
    handles = [
        await service.asubmit(circuits[i % len(circuits)], shots=512)
        for i in range(JOBS_PER_TENANT)
    ]
    outcomes = {"jobs": 0, "cached": 0, "coalesced": 0}
    for result in await asyncio.gather(*handles):
        outcomes["jobs"] += 1
        outcomes["cached"] += int(result.from_cache)
        outcomes["coalesced"] += int(result.coalesced)
    print(f"tenant {tenant_id}: {outcomes}")
    return outcomes


async def main() -> None:
    set_config(seed=1234)
    started = time.perf_counter()
    with QuantumJobService(backend="qpp", workers=2, name="async-demo") as service:
        totals = await asyncio.gather(*(tenant(service, t) for t in range(TENANTS)))
        metrics = service.metrics()
    elapsed = time.perf_counter() - started

    jobs = sum(t["jobs"] for t in totals)
    print(
        f"\n{jobs} jobs from {TENANTS} async tenants in {elapsed:.2f}s "
        f"({jobs / elapsed:.0f} jobs/s)"
    )
    print(
        f"backend executions: {metrics.executions} "
        f"(cache hit rate {metrics.cache_hit_rate:.0%}, "
        f"{metrics.coalesced} coalesced)"
    )


if __name__ == "__main__":
    asyncio.run(main())
