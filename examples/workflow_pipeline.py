#!/usr/bin/env python3
"""Section VII — a parallel quantum-classical workflow with async JIT compilation.

The workflow factorises N = 15 and simultaneously characterises the deuteron
ground state, then combines both results in a classical summary step:

* two order-finding tasks (different bases) run on the ``qpu`` resource,
* a VQE task runs concurrently on the ``cpu`` resource,
* an asynchronous JIT-compilation task optimises a redundant kernel on the
  ``gpu`` resource and executes it once ready,
* the final ``report`` task depends on all of them.

Run with::

    python examples/workflow_pipeline.py
"""

import repro
from repro.algorithms.shor import run_order_finding
from repro.algorithms.vqe import run_deuteron_vqe
from repro.core.jit import AsyncKernelCompiler
from repro.core.workflow import Workflow, result_of
from repro.ir.builder import CircuitBuilder


def compile_and_run_redundant_kernel() -> dict[str, int]:
    """The async JIT scenario: optimise a wasteful kernel, then execute it."""
    wasteful = (
        CircuitBuilder(2, name="wasteful_bell")
        .h(0).h(0).h(0)            # two of these cancel
        .rz(1, 0.3).rz(1, -0.3)    # and these vanish entirely
        .cx(0, 1)
        .measure_all()
        .build()
    )
    q = repro.qalloc(2)
    with AsyncKernelCompiler(synthetic_latency_per_effort=0.02) as compiler:
        handle = compiler.compile_async(wasteful, effort=2)
        counts = handle.execute_when_ready(q, shots=512, timeout=30)
        result = handle.result()
    print(f"[gpu] JIT compilation removed {result.gate_reduction} instruction(s) "
          f"in {result.compile_seconds * 1e3:.1f} ms")
    return counts


def summarise(shor_a, shor_b, vqe, compiled_counts) -> str:
    factors = shor_a.factors or shor_b.factors
    return (
        f"15 = {' x '.join(map(str, factors))} | "
        f"deuteron E0 = {vqe.optimal_energy:.5f} Ha | "
        f"compiled-kernel shots = {sum(compiled_counts.values())}"
    )


def main() -> None:
    repro.set_config(seed=11)

    workflow = Workflow("quantum-classical-pipeline", resource_limits={"qpu": 2, "gpu": 1})
    workflow.add_task("shor_a2", run_order_finding, 15, 2, 10, resource="qpu")
    workflow.add_task("shor_a7", run_order_finding, 15, 7, 10, resource="qpu")
    workflow.add_task("vqe", run_deuteron_vqe, "l-bfgs", resource="cpu")
    workflow.add_task("jit_kernel", compile_and_run_redundant_kernel, resource="gpu")
    workflow.add_task(
        "report",
        summarise,
        result_of("shor_a2"),
        result_of("shor_a7"),
        result_of("vqe"),
        result_of("jit_kernel"),
        depends_on=["shor_a2", "shor_a7", "vqe", "jit_kernel"],
    )

    print(f"critical path length: {workflow.critical_path_length()} task(s)")
    outcome = workflow.run()
    print(f"completion order: {outcome.completion_order}")
    for name, seconds in sorted(outcome.durations.items(), key=lambda kv: kv[1], reverse=True):
        print(f"  {name:<10} {seconds * 1e3:7.1f} ms")
    print(f"total wall time: {outcome.wall_time_seconds * 1e3:.1f} ms")
    print(f"\nreport: {outcome['report']}")


if __name__ == "__main__":
    main()
