#!/usr/bin/env python3
"""Listing 4 — simultaneously launching two Bell kernels with threads.

Two user threads each allocate their own register and run the Bell kernel.
With the thread-safe runtime (the paper's contribution) each thread gets its
own accelerator instance via the QPUManager, so the kernels do not interfere.
The example also runs the same workload through the one-by-one / parallel
executor used by the Figure 3 benchmark and reports the wall-clock speed-up
observed on this host.

Run with::

    python examples/parallel_bell_threads.py
"""

import repro
from repro import qcor_thread
from repro.algorithms.bell import bell_kernel
from repro.benchmark.harness import BenchmarkHarness
from repro.benchmark.workloads import bell_workload


def foo() -> None:
    """The per-thread work of Listing 4: allocate, run, print."""
    q = repro.qalloc(2)
    bell_kernel(q)
    q.print()


def main() -> None:
    repro.set_shots(1024)

    print("== Listing 4: two Bell kernels on two threads ==")
    # qcor_thread starts the thread and performs the per-thread
    # quantum::initialize() call the paper requires.
    t0 = qcor_thread(foo)
    t1 = qcor_thread(foo)
    # ... other classical/quantum work could happen here on the main thread ...
    t0.join()
    t1.join()

    print("\n== Figure 3 style comparison on this host (wall clock) ==")
    harness = BenchmarkHarness(mode="real")
    workload = bell_workload(n_kernels=2, shots=1024)
    one_by_one, parallel = harness.compare(workload, total_threads=2)
    print(f"one-by-one ({one_by_one.total_threads} threads total): "
          f"{one_by_one.duration * 1e3:.1f} ms")
    print(f"parallel   (2 x {parallel.threads_per_task} threads/task): "
          f"{parallel.duration * 1e3:.1f} ms")
    print(f"speed-up of parallel over one-by-one: "
          f"{one_by_one.duration / parallel.duration:.2f}x")


if __name__ == "__main__":
    main()
