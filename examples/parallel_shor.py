#!/usr/bin/env python3
"""Algorithm 2 — parallel Shor's algorithm with asynchronous tasks.

Factorises N = 15 by launching one order-finding task per candidate base
``a`` (Algorithm 2 of the paper); each task runs the period-finding kernel
on its own user thread with its own QPU instance.  The example then runs the
Figure 4 workload (SHOR(15, 2) and SHOR(15, 7)) through the one-by-one and
parallel executors and reports the observed wall-clock speed-up on this host.

Run with::

    python examples/parallel_shor.py
"""

import repro
from repro.algorithms.parallel_shor import parallel_shor_factor
from repro.algorithms.shor import run_order_finding
from repro.benchmark.harness import BenchmarkHarness
from repro.benchmark.workloads import figure4_workload


def main() -> None:
    repro.set_config(seed=7)

    print("== Algorithm 2: factorising N = 15 with two async tasks ==")
    result = parallel_shor_factor(15, n_tasks=2, shots=10, bases=[2, 7])
    print(f"base a = {result.a}, estimated period r = {result.period}, "
          f"factors = {result.factors}")

    print("\n== A single SHOR task in detail (N = 15, a = 7) ==")
    detail = run_order_finding(15, 7, shots=10)
    print(f"measured counting-register values (value: count): {detail.phase_counts}")
    print(f"period estimate r = {detail.period} -> factors {detail.factors}")

    print("\n== Figure 4 workload on this host (wall clock) ==")
    harness = BenchmarkHarness(mode="real")
    workload = figure4_workload()
    one_by_one, parallel = harness.compare(workload, total_threads=2)
    print(f"one-by-one: {one_by_one.duration * 1e3:.0f} ms, "
          f"parallel: {parallel.duration * 1e3:.0f} ms, "
          f"speed-up {one_by_one.duration / parallel.duration:.2f}x")

    print("\n== Figure 4 regenerated on the paper's machine model (modeled mode) ==")
    from repro.benchmark.figures import figure4
    from repro.benchmark.reporting import format_figure

    print(format_figure(figure4(mode="modeled")))


if __name__ == "__main__":
    main()
