#!/usr/bin/env python3
"""Listing 3 — VQE for the deuteron Hamiltonian.

Builds the one-parameter ansatz and the deuteron Hamiltonian exactly as in
the paper's Listing 3, creates an objective function with central-difference
gradients (step 1e-3) and minimises it with the L-BFGS optimizer.  A second
section demonstrates the Section VII scenario: several VQE instances with
different initial angles running concurrently as asynchronous tasks.

Run with::

    python examples/vqe_deuteron.py
"""

import repro
from repro import createObjectiveFunction, createOptimizer
from repro.algorithms.vqe import run_deuteron_vqe
from repro.core.threading_api import TaskGroup
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.operators import X, Y, Z


def main() -> None:
    # Allocate 2 qubits.
    q = repro.qalloc(2)

    # The programmer sets the number of variational parameters.
    n_variational_params = 1

    # Create the deuteron Hamiltonian (Listing 3).
    H = (
        5.907
        - 2.1433 * X(0) * X(1)
        - 2.1433 * Y(0) * Y(1)
        + 0.21829 * Z(0)
        - 6.125 * Z(1)
    )

    # The ansatz kernel: X(q[0]); Ry(q[1], theta); CX(q[1], q[0]);
    ansatz = CircuitBuilder(2, name="ansatz").x(0).ry(1, Parameter("theta")).cx(1, 0).build()

    # Create the ObjectiveFunction with central-difference gradients.
    objective = createObjectiveFunction(
        ansatz, H, q, n_variational_params,
        {"gradient-strategy": "central", "step": 1e-3},
    )

    # Create the Optimizer (the nlopt l-bfgs of the paper maps to scipy L-BFGS-B).
    optimizer = createOptimizer("nlopt", {"nlopt-optimizer": "l-bfgs"})

    # Optimize.
    opt_val, opt_params = optimizer.optimize(objective)
    print(f"optimal energy  : {opt_val:.6f} Ha")
    print(f"optimal theta   : {float(opt_params[0]):.6f} rad")
    print(f"exact energy    : {H.ground_state_energy(2):.6f} Ha")
    print(f"objective calls : {objective.evaluation_count}")

    print("\n== Section VII scenario: asynchronous multi-start VQE ==")
    starts = [0.0, 0.8, -1.2, 2.5]
    with TaskGroup() as group:
        for theta0 in starts:
            group.launch(run_deuteron_vqe, "l-bfgs", "central", True, None, theta0)
    for theta0, result in zip(starts, group.results()):
        print(f"start theta = {theta0:+.2f} -> energy {result.optimal_energy:.6f} Ha "
              f"({result.function_evaluations} evaluations)")


if __name__ == "__main__":
    main()
