#!/usr/bin/env python3
"""The job broker under multi-tenant load: 16 client threads, one service.

Each client thread plays a tenant running a small variational workload: it
repeatedly submits a QAOA MaxCut circuit (most tenants share a handful of
distinct circuits, as real traffic does) and waits on the returned futures.
The broker serves the flood through a 4-worker dispatcher pool — each worker
holding its own accelerator clone via the QPUManager, the paper's
thread-safe path — while the result cache and batch coalescing collapse the
repeated work into a handful of backend executions.

The second half re-runs the same load in legacy (non-thread-safe) mode and
prints the data races the detector records — the paper's contrast, observed
through a production-shaped workload instead of two hand-rolled threads.

Run with::

    PYTHONPATH=src python examples/job_service.py
"""

import threading
import time

import networkx as nx

import repro
from repro import QuantumJobService, configure
from repro.algorithms.qaoa import qaoa_circuit
from repro.core.race_detector import get_race_detector, reset_race_detector
from repro.obs import disable_profiler, disable_tracing, enable_profiler, enable_tracing

N_CLIENTS = 16
JOBS_PER_CLIENT = 6
SHOTS = 2048

#: Four distinct tenant workloads; clients share them round-robin.
CIRCUITS = [
    qaoa_circuit(nx.cycle_graph(n), gammas=[0.8], betas=[0.4]) for n in (4, 5, 6, 7)
]


def run_clients(service: QuantumJobService) -> float:
    """Hammer ``service`` from N_CLIENTS threads; returns the wall time."""
    barrier = threading.Barrier(N_CLIENTS)

    def client(index: int) -> None:
        barrier.wait()
        circuit = CIRCUITS[index % len(CIRCUITS)]
        handles = [service.submit(circuit, shots=SHOTS) for _ in range(JOBS_PER_CLIENT)]
        for handle in handles:
            result = handle.result(timeout=60)
            assert result.total_counts() == SHOTS

    threads = [threading.Thread(target=client, args=(i,)) for i in range(N_CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started


def main() -> None:
    total_jobs = N_CLIENTS * JOBS_PER_CLIENT

    print(f"== {N_CLIENTS} tenants x {JOBS_PER_CLIENT} jobs through the broker ==")
    # Observability on for the dashboard: spans trace every job's lifecycle
    # (sampled at 25% to keep overhead bounded under flood traffic), the
    # profiler attributes replay time to kernel classes.
    tracer = enable_tracing(sample_rate=0.25)
    profiler = enable_profiler()
    try:
        with QuantumJobService(backend="qpp", workers=4, max_pending=256) as service:
            wall = run_clients(service)
            metrics = service.metrics()
    finally:
        disable_tracing()
        disable_profiler()
    print(f"jobs completed:      {metrics.completed}/{total_jobs} in {wall * 1e3:.0f} ms")
    print(f"backend executions:  {metrics.executions} "
          f"(coalesced riders: {metrics.coalesced}, cache hits: {metrics.cache_hits})")
    print(f"cache hit rate:      {metrics.cache_hit_rate:.0%}")
    print(f"shots simulated:     {metrics.executed_shots} of {metrics.served_shots} served")
    print(f"throughput:          {metrics.throughput_jobs_per_second:.0f} jobs/s")
    plan_cache = metrics.plan_cache
    print(f"plan cache:          {plan_cache.hits} hits / {plan_cache.lookups} lookups "
          f"({plan_cache.hit_rate:.0%}), {plan_cache.size}/{plan_cache.capacity} plans resident")
    if metrics.process_shards:
        print(f"shard health:        {metrics.process_shards} shards, "
              f"{metrics.shard_respawns} respawns, "
              f"queue depths {list(metrics.shard_queue_depths)}")
    for backend, latency in metrics.backend_latency.items():
        print(f"{backend} execution latency: p50 {latency.p50_seconds * 1e3:.1f} ms / "
              f"p95 {latency.p95_seconds * 1e3:.1f} ms / "
              f"p99 {latency.p99_seconds * 1e3:.1f} ms "
              f"(mean {latency.mean_seconds * 1e3:.1f} ms over {latency.executions} runs)")
    profile = profiler.snapshot()
    if profile.kernels:
        print("\nper-kernel replay profile (cumulative worker-seconds):")
        for line in profile.as_table().splitlines():
            print(f"  {line}")
    traces = tracer.trace_ids()
    if traces:
        # Show the deepest tree (batch leaders host the execution subtree;
        # coalesced riders close with a bare root span).
        richest = max(traces, key=lambda t: len(tracer.spans(t)))
        print(f"\ntraced {len(traces)} of {metrics.completed} jobs; one span tree:")
        for line in tracer.render_tree(richest).splitlines():
            print(f"  {line}")
    races = get_race_detector().race_count()
    print(f"\nrace-detector reports (thread-safe mode): {races}")

    print("\n== the same load in legacy (pre-paper) mode ==")
    reset_race_detector()
    with configure(thread_safe=False):
        # Disable the cache so every job drives the shared simulator, the
        # way the original runtime would have served this traffic.
        with QuantumJobService(workers=4, max_pending=256, enable_cache=False) as legacy:
            run_clients(legacy)
    detector = get_race_detector()
    print(f"race-detector reports (legacy mode):      {detector.race_count()} "
          f"on {sorted(detector.resources_with_races())}")


if __name__ == "__main__":
    main()
