#!/usr/bin/env python3
"""QAOA for MaxCut — the other variational workload QCOR advertises.

Solves MaxCut on a small random graph with a depth-2 QAOA, then shows the
task-level parallelism angle: several graphs are optimised concurrently,
each on its own user thread with its own QPU instance.

Run with::

    python examples/qaoa_maxcut.py
"""

import networkx as nx

from repro.algorithms.qaoa import run_qaoa_maxcut
from repro.core.threading_api import TaskGroup


def main() -> None:
    print("== Depth-2 QAOA on a 3-regular random graph (8 nodes) ==")
    graph = nx.random_regular_graph(3, 8, seed=42)
    result = run_qaoa_maxcut(graph, p=2, seed=1)
    print(f"best sampled cut   : {result.best_cut_value:.1f} "
          f"(optimum {result.max_possible_cut:.1f})")
    print(f"approximation ratio: {result.approximation_ratio:.3f}")
    print(f"best assignment    : {result.best_bitstring}")
    print(f"optimal angles     : {[round(a, 3) for a in result.optimal_angles]}")

    print("\n== Task-level parallelism: three graphs optimised concurrently ==")
    graphs = {
        "triangle": nx.cycle_graph(3),
        "square": nx.cycle_graph(4),
        "path5": nx.path_graph(5),
    }
    with TaskGroup() as group:
        for graph in graphs.values():
            group.launch(run_qaoa_maxcut, graph, 2, "nelder-mead", 3)
    for name, outcome in zip(graphs, group.results()):
        print(f"{name:>9}: cut {outcome.best_cut_value:.1f} / {outcome.max_possible_cut:.1f} "
              f"(ratio {outcome.approximation_ratio:.2f})")


if __name__ == "__main__":
    main()
