#!/usr/bin/env python3
"""Quickstart — the paper's Listing 1/2: a single-source Bell kernel.

Run with::

    python examples/quickstart.py

The kernel body is plain Python using the tracing DSL; calling the kernel
with an allocated register executes it on the calling thread's QPU (the
Quantum++-style state-vector backend) and fills the register's buffer with
the measurement histogram, which prints in the AcceleratorBuffer format the
paper shows in Listing 2.
"""

import repro
from repro import qpu
from repro.compiler.dsl import CX, H, Measure


# The Bell kernel (Listing 1).
@qpu
def bell(q):
    H(q[0])
    CX(q[0], q[1])
    for i in range(q.size()):
        Measure(q[i])


def main() -> None:
    # Configure the default backend and shot count (1024, as in the paper).
    repro.initialize("qpp", shots=1024)

    # Create one qubit register of size 2.
    q = repro.qalloc(2)

    # Run the quantum kernel.
    bell(q)

    # Dump the results (Listing 2 format).
    q.print()

    # The same kernel is also available as IR, e.g. for inspection:
    print("\nKernel IR (XASM form):")
    print(bell.xasm(2))


if __name__ == "__main__":
    main()
