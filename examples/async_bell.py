#!/usr/bin/env python3
"""Listing 5 — asynchronously launching a quantum kernel with a future.

The Bell kernel is launched with ``qcor_async`` (the ``std::async`` analogue
with automatic per-thread runtime initialisation); the main thread overlaps
other work — here, a VQE optimisation — and only then collects the future.
The example also shows the simulated *remote* accelerator, where submission
returns a job handle immediately, mirroring a queued cloud backend.

Run with::

    python examples/async_bell.py
"""

import repro
from repro import qcor_async
from repro.algorithms.bell import bell_circuit, bell_kernel
from repro.algorithms.vqe import run_deuteron_vqe
from repro.runtime.buffer import AcceleratorBuffer
from repro.runtime.service_registry import get_accelerator


def foo() -> int:
    """The asynchronous task of Listing 5."""
    q = repro.qalloc(2)
    bell_kernel(q)
    q.print()
    return 1


def main() -> None:
    repro.set_shots(1024)

    print("== Listing 5: std::async-style launch ==")
    future = qcor_async(foo)

    # Other classical/quantum work on the main thread while the kernel runs:
    print("main thread: running a deuteron VQE while the Bell kernel is in flight...")
    vqe = run_deuteron_vqe(optimizer_name="l-bfgs")
    print(f"main thread: VQE energy = {vqe.optimal_energy:.5f} Ha "
          f"(exact {vqe.exact_ground_energy:.5f} Ha)")

    # Collect the asynchronous result.
    print(f"async task returned: {future.result(timeout=60)}")

    print("\n== Asynchronous submission to a (simulated) remote backend ==")
    remote = get_accelerator("remote-qpp", {"latency-seconds": 0.05, "shots": 512})
    buffer = AcceleratorBuffer(2)
    job = remote.submit(buffer, bell_circuit(2))
    print(f"submitted job {job.job_id}; doing classical work while it is queued...")
    classical_sum = sum(i * i for i in range(100_000))
    print(f"classical work done (checksum {classical_sum}); waiting for the job...")
    job.result(timeout=30)
    print("remote job finished:")
    buffer.print()


if __name__ == "__main__":
    main()
