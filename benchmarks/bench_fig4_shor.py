"""Figure 4 — SHOR(N=15, a=2) and SHOR(N=15, a=7) kernels, 10 shots each.

Paper speed-ups over 12-thread one-by-one execution:
1.00 / 1.02 / 1.20 / 1.22 for {one-by-one 12t, one-by-one 24t, parallel
2x6t, parallel 2x12t}.
"""

from __future__ import annotations

import pytest

from repro.benchmark.figures import PAPER_FIGURE4, figure4
from repro.benchmark.harness import BenchmarkHarness
from repro.benchmark.workloads import figure4_workload, shor_workload

_CONFIGURATIONS = [
    ("one-by-one", 12, "one-by-one 12 threads"),
    ("one-by-one", 24, "one-by-one 24 threads"),
    ("parallel", 12, "parallel 2 x (6 threads/task)"),
    ("parallel", 24, "parallel 2 x (12 threads/task)"),
]


@pytest.mark.parametrize("variant,threads,label", _CONFIGURATIONS)
def test_fig4_modeled_variant(benchmark, variant, threads, label):
    """Benchmark the modeled evaluation of one Figure 4 configuration."""
    harness = BenchmarkHarness(mode="modeled")
    workload = figure4_workload()
    result = benchmark(harness.run_variant, workload, variant, threads)
    benchmark.extra_info["paper_speedup_vs_12t_baseline"] = PAPER_FIGURE4[label]
    benchmark.extra_info["modeled_duration"] = result.duration


def test_fig4_full_series_modeled(benchmark):
    """Regenerate the whole Figure 4 series and record paper-vs-measured."""
    series = benchmark(figure4, "modeled")
    benchmark.extra_info["paper"] = series.paper()
    benchmark.extra_info["measured"] = {k: round(v, 3) for k, v in series.measured().items()}
    measured = series.measured()
    assert measured["parallel 2 x (12 threads/task)"] > 1.0
    assert measured["one-by-one 24 threads"] == pytest.approx(1.0, abs=0.15)


@pytest.mark.parametrize("variant,total_threads", [("one-by-one", 2), ("parallel", 2)])
def test_fig4_real_execution(benchmark, variant, total_threads):
    """Wall-clock execution of the two-Shor workload on this host (small scale)."""
    harness = BenchmarkHarness(mode="real")
    workload = shor_workload([(15, 2), (15, 7)], shots=10)
    result = benchmark.pedantic(
        harness.run_variant, args=(workload, variant, total_threads), rounds=3, iterations=1
    )
    benchmark.extra_info["wall_seconds"] = result.duration
