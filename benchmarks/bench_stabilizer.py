"""Stabilizer-vs-statevector benchmark — polynomial routing for Clifford work.

The workload is the circuit class the tableau backend exists for: GHZ
chains (entanglement distribution) at widths where the dense lanes are
slow (24 qubits, 2^24 amplitudes) or impossible (500 qubits).  The broker
classifies each circuit at submit time and routes Clifford jobs to the
CHP tableau automatically; everything else keeps the dense path untouched.

Acceptance — all gates bind on **every** host, because the contrast is
asymptotic (O(n²) bits vs O(2^n) amplitudes), not parallelism:

* ≥100x tableau speedup over the statevector lane on the 24-qubit GHZ;
* a 500-qubit GHZ completes end-to-end through the broker in <1 s, with
  the automatic router (no explicit method request) picking the tableau;
* tableau counts agree with the dense lane's distribution at 24 qubits;
* the cost model routes Clifford circuits to the tableau, refuses an
  explicit ``stabilizer`` request for non-Clifford circuits, and the
  broker leaves non-Clifford jobs on the dense path.

Run standalone (writes the ``BENCH_stabilizer.json`` trajectory file)::

    PYTHONPATH=src python benchmarks/bench_stabilizer.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.algorithms.ghz import ghz_circuit
from repro.config import set_config
from repro.exceptions import ExecutionError
from repro.exec import LocalBackend
from repro.exec.stabilizer import StabilizerBackend
from repro.ir.builder import CircuitBuilder
from repro.ir.transforms.clifford import classify_clifford
from repro.runtime.service_registry import reset_registry
from repro.service import QuantumJobService
from repro.simulator.cost_model import SimulationCostModel

SPEEDUP_TARGET = 100.0
GHZ_WIDE_QUBITS = 500
GHZ_WIDE_SECONDS = 1.0
SEED = 20230523  # fixed: counts comparisons only exist at a seed


def host_cores() -> int:
    return os.cpu_count() or 1


def bench_clifford_speedup(quick: bool) -> dict:
    """24-qubit GHZ: tableau vs dense statevector, same shots, same seed."""
    n_qubits = 24
    shots = 1024
    circuit = ghz_circuit(n_qubits)
    dense_backend = LocalBackend()
    tableau_backend = StabilizerBackend()

    started = time.perf_counter()
    dense = dense_backend.execute(circuit, shots, seed=SEED)
    dense_seconds = time.perf_counter() - started

    # The tableau run is sub-millisecond at this width; best-of-3 keeps the
    # denominator out of timer-resolution noise.
    repeats = 3 if quick else 5
    tableau_seconds = float("inf")
    tableau = None
    for _ in range(repeats):
        started = time.perf_counter()
        tableau = tableau_backend.execute(circuit, shots, seed=SEED)
        tableau_seconds = min(tableau_seconds, time.perf_counter() - started)

    poles = {"0" * n_qubits, "1" * n_qubits}
    agreement = (
        set(dense.counts) <= poles
        and set(tableau.counts) <= poles
        and sum(tableau.counts.values()) == shots
        # Fair-coin marginal within 5 sigma on both lanes.
        and abs(tableau.counts.get("0" * n_qubits, 0) - shots / 2)
        < 5 * (shots * 0.25) ** 0.5
    )
    return {
        "case": "clifford_speedup_24q",
        "n_qubits": n_qubits,
        "shots": shots,
        "statevector_seconds": dense_seconds,
        "stabilizer_seconds": tableau_seconds,
        "speedup": dense_seconds / tableau_seconds,
        "counts_agree": agreement,
        "target": SPEEDUP_TARGET,
        "target_enforced": True,  # asymptotic contrast: binds on all hosts
    }


def bench_ghz_wide_broker(quick: bool) -> dict:
    """500-qubit GHZ end-to-end through the broker's automatic routing."""
    n_qubits = GHZ_WIDE_QUBITS
    shots = 256 if quick else 1024
    circuit = ghz_circuit(n_qubits)

    reset_registry()
    set_config(seed=SEED)
    with QuantumJobService(workers=1, name="bench-stab-wide") as service:
        started = time.perf_counter()
        result = service.submit(circuit, shots=shots).result(timeout=120)
        wall_seconds = time.perf_counter() - started
        metrics = service.metrics()

    poles = {"0" * n_qubits, "1" * n_qubits}
    return {
        "case": "ghz_wide_broker",
        "n_qubits": n_qubits,
        "shots": shots,
        "wall_seconds": wall_seconds,
        "routed_to_tableau": metrics.stabilizer_executions == 1,
        "counts_on_poles": set(result.counts) <= poles,
        "total_counts": result.total_counts(),
        "target_seconds": GHZ_WIDE_SECONDS,
        "target_enforced": True,
    }


def bench_routing(quick: bool) -> dict:
    """Routing soundness: picks the tableau for Clifford, refuses otherwise."""
    model = SimulationCostModel()
    clifford = classify_clifford(ghz_circuit(8))
    non_clifford_circuit = (
        CircuitBuilder(3, name="bench_non_clifford")
        .h(0)
        .rx(1, 0.3)
        .cx(0, 1)
        .measure_all()
        .build()
    )
    non_clifford = classify_clifford(non_clifford_circuit)

    picks_tableau = model.choose_backend(clifford) == "stabilizer"
    keeps_dense = model.choose_backend(non_clifford) == "statevector"
    try:
        model.choose_backend(non_clifford, "stabilizer")
        refuses_explicit = False
    except ExecutionError:
        refuses_explicit = True

    # The broker leaves non-Clifford jobs on the dense path end to end.
    reset_registry()
    set_config(seed=SEED)
    with QuantumJobService(workers=1, name="bench-stab-routing") as service:
        dense_result = service.submit(non_clifford_circuit, shots=128).result(
            timeout=60
        )
        metrics = service.metrics()
    return {
        "case": "routing_soundness",
        "auto_picks_tableau_for_clifford": picks_tableau,
        "auto_keeps_non_clifford_dense": keeps_dense,
        "refuses_explicit_stabilizer_on_non_clifford": refuses_explicit,
        "broker_dense_executions": metrics.executions,
        "broker_stabilizer_executions": metrics.stabilizer_executions,
        "dense_total_counts": dense_result.total_counts(),
    }


def run_suite(quick: bool = False) -> dict:
    reset_registry()
    set_config(seed=SEED)
    speedup = bench_clifford_speedup(quick)
    wide = bench_ghz_wide_broker(quick)
    routing = bench_routing(quick)
    set_config(seed=None)
    reset_registry()
    return {
        "benchmark": "stabilizer",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": host_cores(),
        "results": [speedup, wide, routing],
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _gates(report: dict) -> list[str]:
    """Every failed gate, as human-readable strings (empty = all green)."""
    speedup, wide, routing = report["results"]
    failures = []
    if speedup["speedup"] < speedup["target"]:
        failures.append(
            f"24q speedup {speedup['speedup']:.1f}x < {speedup['target']:.0f}x"
        )
    if not speedup["counts_agree"]:
        failures.append("24q tableau counts disagree with the dense lane")
    if wide["wall_seconds"] >= wide["target_seconds"]:
        failures.append(
            f"{wide['n_qubits']}q GHZ took {wide['wall_seconds']:.2f}s "
            f">= {wide['target_seconds']:.0f}s"
        )
    if not wide["routed_to_tableau"]:
        failures.append("wide GHZ was not auto-routed to the tableau")
    if not wide["counts_on_poles"]:
        failures.append("wide GHZ counts left the GHZ poles")
    for key in (
        "auto_picks_tableau_for_clifford",
        "auto_keeps_non_clifford_dense",
        "refuses_explicit_stabilizer_on_non_clifford",
    ):
        if not routing[key]:
            failures.append(f"routing gate failed: {key}")
    if routing["broker_stabilizer_executions"] != 0:
        failures.append("broker routed a non-Clifford job to the tableau")
    return failures


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_stabilizer_speedup_and_routing():
    """Acceptance: every gate binds on every host — the contrast under test
    is asymptotic, not a parallelism ratio.  The JSON file lands either way."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_stabilizer.json"))
    speedup, wide, _ = report["results"]
    print(
        f"\nstabilizer {speedup['speedup']:.0f}x over statevector "
        f"({speedup['n_qubits']} qubits, target {SPEEDUP_TARGET:.0f}x); "
        f"{wide['n_qubits']}q GHZ through the broker in "
        f"{wide['wall_seconds']:.3f}s (target <{GHZ_WIDE_SECONDS:.0f}s)"
    )
    failures = _gates(report)
    assert not failures, failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer shots/repeats")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_stabilizer.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    speedup, wide, routing = report["results"]
    failures = _gates(report)
    print(
        f"stabilizer: {speedup['speedup']:.0f}x vs statevector at "
        f"{speedup['n_qubits']} qubits (target {SPEEDUP_TARGET:.0f}x); "
        f"{wide['n_qubits']}q GHZ in {wide['wall_seconds']:.3f}s "
        f"(target <{GHZ_WIDE_SECONDS:.0f}s); routing sound: "
        f"{not any('routing' in f or 'broker' in f for f in failures)}"
    )
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
