"""Service benchmark — broker-with-cache vs naive per-thread execution.

Measures what the :class:`repro.service.QuantumJobService` buys on repeated
variational workloads (the dominant traffic shape: an optimiser or many
tenants resubmitting the same ansatz): a warm result cache answers repeat
jobs without touching a simulator, and batching coalesces concurrent
identical submissions into one backend execution.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -q
"""

from __future__ import annotations

import threading
import time

import networkx as nx
import pytest

from repro.algorithms.qaoa import qaoa_circuit
from repro.ir.builder import CircuitBuilder
from repro.runtime.buffer import AcceleratorBuffer
from repro.runtime.service_registry import get_accelerator
from repro.service import QuantumJobService

#: Repeat submissions per workload — the "optimiser loop" shape.
REPEATS = 20


def vqe_workload():
    """A hardware-efficient VQE ansatz (8 qubits, 3 RY+CX layers)."""
    n_qubits, layers = 8, 3
    builder = CircuitBuilder(n_qubits, name="hwe_ansatz")
    for layer in range(layers):
        for qubit in range(n_qubits):
            builder.ry(qubit, 0.3 + 0.1 * layer + 0.05 * qubit)
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
    for qubit in range(n_qubits):
        builder.measure(qubit)
    return builder.build(), 4096


def qaoa_workload():
    """One QAOA layer for MaxCut on an 8-node ring (8 qubits)."""
    return qaoa_circuit(nx.cycle_graph(8), gammas=[0.8], betas=[0.4]), 2048


WORKLOADS = {"vqe": vqe_workload, "qaoa": qaoa_workload}


def naive_repeated_execution(circuit, shots, repeats: int = REPEATS) -> None:
    """The pre-broker behaviour: every request re-simulates from scratch."""
    qpu = get_accelerator("qpp")
    for _ in range(repeats):
        buffer = AcceleratorBuffer(max(circuit.n_qubits, 1))
        qpu.execute(buffer, circuit, shots=shots)


def broker_repeated_jobs(service, circuit, shots, repeats: int = REPEATS):
    handles = [service.submit(circuit, shots=shots) for _ in range(repeats)]
    return [handle.result(timeout=60) for handle in handles]


@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=sorted(WORKLOADS))
def test_naive_repeated_execution(benchmark, workload):
    """Baseline: one fresh simulation per repeated request."""
    circuit, shots = WORKLOADS[workload]()
    benchmark.pedantic(
        naive_repeated_execution, args=(circuit, shots), rounds=3, iterations=1
    )


@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=sorted(WORKLOADS))
def test_broker_warm_cache_repeated_jobs(benchmark, workload):
    """Broker with a warm cache: repeats are subsampled cache hits."""
    circuit, shots = WORKLOADS[workload]()
    with QuantumJobService(workers=4) as service:
        service.submit(circuit, shots=shots).result(timeout=60)  # warm the cache
        benchmark.pedantic(
            broker_repeated_jobs, args=(service, circuit, shots), rounds=3, iterations=1
        )
        stats = service.metrics()
    benchmark.extra_info["cache_hit_rate"] = stats.cache_hit_rate
    benchmark.extra_info["executions"] = stats.executions
    assert stats.executions == 1  # only the warming run ever hit the backend


@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=sorted(WORKLOADS))
def test_warm_cache_is_at_least_3x_faster_than_naive(workload):
    """Acceptance: broker+cache resolves repeated identical jobs ≥3× faster."""
    circuit, shots = WORKLOADS[workload]()

    # Best of two rounds each: the broker side is a handful of ms, so a
    # single scheduler hiccup would otherwise flake the ratio.
    naive_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        naive_repeated_execution(circuit, shots)
        naive_seconds = min(naive_seconds, time.perf_counter() - started)

    with QuantumJobService(workers=4) as service:
        service.submit(circuit, shots=shots).result(timeout=60)
        broker_seconds = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            results = broker_repeated_jobs(service, circuit, shots)
            broker_seconds = min(broker_seconds, time.perf_counter() - started)

    assert all(r.from_cache for r in results)
    assert all(r.total_counts() == shots for r in results)
    speedup = naive_seconds / broker_seconds
    print(
        f"\n[{workload}] naive {naive_seconds * 1e3:.1f} ms vs broker "
        f"{broker_seconds * 1e3:.1f} ms for {REPEATS} repeats -> {speedup:.1f}x"
    )
    # The execution-plan cache sped the *naive* baseline up ~5x (repeat
    # executions skip compilation and per-gate dispatch), so the result
    # cache's relative margin shrank from ~11x to ~5x; 3x keeps the
    # assertion meaningful without timing-noise flakes at the boundary.
    assert speedup >= 3.0, (
        f"warm-cache broker only {speedup:.1f}x faster than naive re-execution"
    )


def test_multiclient_throughput_broker_vs_naive(benchmark):
    """16 client threads, each submitting the same QAOA job repeatedly.

    The broker serves the flood with one execution plus cache hits and
    coalescing; the report's extra_info records both wall clocks so the
    comparison lands in the benchmark JSON.
    """
    circuit, shots = qaoa_workload()
    n_clients = 16
    per_client = 4

    def hammer_broker():
        with QuantumJobService(workers=4, max_pending=256) as service:
            barrier = threading.Barrier(n_clients)

            def client():
                barrier.wait()
                for _ in range(per_client):
                    service.submit(circuit, shots=shots).result(timeout=60)

            threads = [threading.Thread(target=client) for _ in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return service.metrics()

    metrics = benchmark.pedantic(hammer_broker, rounds=3, iterations=1)

    started = time.perf_counter()
    qpu = get_accelerator("qpp")
    for _ in range(n_clients * per_client):
        buffer = AcceleratorBuffer(circuit.n_qubits)
        qpu.execute(buffer, circuit, shots=shots)
    naive_seconds = time.perf_counter() - started

    benchmark.extra_info["naive_seconds_same_traffic"] = naive_seconds
    benchmark.extra_info["broker_executions"] = metrics.executions
    benchmark.extra_info["broker_cache_hit_rate"] = metrics.cache_hit_rate
    # 64 client jobs must collapse to a handful of backend executions.
    assert metrics.completed == n_clients * per_client
    assert metrics.executions <= 4
