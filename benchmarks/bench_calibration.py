"""Calibration benchmark — modeled lane ranking vs measured lane times.

Runs a quick host calibration, builds the cost model from the persisted
profile, and checks the model's *adaptive lane selection* against reality:
for each workload the lane the model would route to must land within
``RANKING_TOLERANCE`` of the measured-cheapest lane.  The gate is enforced
on **every** host, including 1-core containers — there the viable lane set
collapses to ``{serial}`` (exactly what the adaptive backend sees through
``effective_threads``), so the model must simply agree that serial wins.

Also re-verifies the two result invariants the adaptive selector rests on:

* fixed-seed counts are **bit-identical** with adaptive routing on vs off
  at complex128 across bell/ghz/qft/shor/vqe;
* the complex64 tier stays within the documented 1e-4 max amplitude
  deviation from complex128 on the same suite.

Run standalone (writes the ``BENCH_calibration.json`` trajectory file)::

    PYTHONPATH=src python benchmarks/bench_calibration.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_calibration.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.calibrate import run_calibration
from repro.exec import LocalBackend, SharedStatePool
from repro.ir.builder import CircuitBuilder
from repro.simulator.cost_model import SimulationCostModel
from repro.simulator.execution_plan import compile_plan
from repro.simulator.parallel_engine import ParallelSimulationEngine

#: The modeled-cheapest lane's *measured* time may exceed the measured
#: minimum by at most this factor.  Enforced on every host.
RANKING_TOLERANCE = 1.25

#: Documented complex64 fidelity bound (max |amp64 - amp128|).
AMPLITUDE_BOUND = 1e-4


def host_cores() -> int:
    return os.cpu_count() or 1


def algorithm_suite():
    shor = period_finding_circuit(15, 2)
    vqe = deuteron_ansatz_circuit(0.59)
    return {
        "bell": (bell_circuit(2), 2),
        "ghz": (ghz_circuit(5), 5),
        "qft": (qft_circuit(6), 6),
        "shor": (shor, shor.n_qubits),
        "vqe": (vqe, max(vqe.n_qubits, 2)),
    }


def _best_of(rounds: int, fn) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def ranking_circuit(n_qubits: int, layers: int):
    """RX layers + CX ladder: a plan with no structure the optimizer can
    collapse, so the modeled step sequence is exactly what replays."""
    builder = CircuitBuilder(n_qubits, name=f"rank_{n_qubits}q_{layers}l")
    for layer in range(layers):
        for qubit in range(n_qubits):
            builder.rx(qubit, 0.1 + 0.07 * layer + 0.013 * qubit)
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
    return builder.build()


# ---------------------------------------------------------------------------
# Modeled vs measured lane ranking
# ---------------------------------------------------------------------------


def measure_lane_ranking(model: SimulationCostModel, profile, quick: bool) -> list[dict]:
    """Per workload: the model's lane prediction vs measured lane seconds.

    The viable lane set mirrors what the adaptive backend sees in
    production: threads only when the calibration recommended a thread
    count > 1, shm only when the shm stage measured a barrier cost.
    """
    threads = int(profile.recommended_threads or 1)
    shm_workers = int(profile.recommended_shm_workers or 0)
    rounds = 2 if quick else 3
    workloads = [(8, 2), (12, 2)] if quick else [(8, 3), (12, 3), (15, 2)]

    engine = ParallelSimulationEngine(num_threads=threads) if threads > 1 else None
    pool = (
        SharedStatePool(shm_workers, name="bench-cal-rank")
        if shm_workers > 1
        else None
    )
    rankings = []
    try:
        for n_qubits, layers in workloads:
            plan = compile_plan(
                ranking_circuit(n_qubits, layers),
                n_qubits,
                chunk_threshold=model.chunk_threshold,
            )
            predicted = model.lane_costs(
                plan, 0, threads=threads, shm_workers=shm_workers
            )
            choice = model.choose_lane(
                plan, 0, threads=threads, shm_workers=shm_workers
            )
            measured = {
                "serial": _best_of(rounds, lambda: plan.execute(plan.new_state()))
            }
            if engine is not None:
                measured["threads"] = _best_of(
                    rounds, lambda: plan.execute(plan.new_state(), pool=engine)
                )
            if pool is not None:
                measured["shm"] = _best_of(
                    rounds, lambda: plan.execute(plan.new_state(), pool=pool)
                )
            cheapest = min(measured, key=measured.get)
            within = measured[choice] <= measured[cheapest] * RANKING_TOLERANCE
            rankings.append(
                {
                    "n_qubits": n_qubits,
                    "plan_steps": plan.n_steps,
                    "modeled_units": predicted,
                    "modeled_choice": choice,
                    "measured_seconds": measured,
                    "measured_cheapest": cheapest,
                    "agreement": choice == cheapest,
                    "within_tolerance": bool(within),
                }
            )
    finally:
        if engine is not None:
            engine.close()
        if pool is not None:
            pool.close()
    return rankings


# ---------------------------------------------------------------------------
# Result invariants: adaptive identity at complex128, fidelity at complex64
# ---------------------------------------------------------------------------


def check_adaptive_identity(model: SimulationCostModel, shots: int = 512, seed: int = 1234) -> dict:
    fixed = LocalBackend(adaptive=False)
    adaptive = LocalBackend(adaptive=True, cost_model=model)
    results = {}
    for name, (circuit, width) in algorithm_suite().items():
        reference = fixed.execute(circuit, shots, n_qubits=width, seed=seed)
        routed = adaptive.execute(circuit, shots, n_qubits=width, seed=seed)
        results[name] = dict(routed.counts) == dict(reference.counts)
    return results


def check_single_precision_fidelity() -> dict:
    results = {}
    for name, (circuit, width) in algorithm_suite().items():
        double_plan = compile_plan(circuit, width)
        single_plan = compile_plan(circuit, width, precision="single")
        ref = double_plan.execute(double_plan.new_state())
        low = single_plan.execute(single_plan.new_state())
        deviation = float(np.max(np.abs(low.astype(np.complex128) - ref)))
        results[name] = {
            "max_amplitude_deviation": deviation,
            "within_bound": deviation <= AMPLITUDE_BOUND,
        }
    return results


def run_suite(quick: bool = False, profile_path: Path | None = None) -> dict:
    profile = run_calibration(quick=True, profile_path=profile_path)
    model = SimulationCostModel.from_profile(profile)
    rankings = measure_lane_ranking(model, profile, quick)
    identity = check_adaptive_identity(model)
    fidelity = check_single_precision_fidelity()
    return {
        "benchmark": "calibration",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": host_cores(),
        "ranking_tolerance": RANKING_TOLERANCE,
        "amplitude_bound": AMPLITUDE_BOUND,
        "profile": json.loads(profile.to_json()),
        "cost_model": {
            k: (dict(v) if isinstance(v, dict) else v)
            for k, v in asdict(model).items()
        },
        "lane_rankings": rankings,
        "ranking_within_tolerance_all": all(r["within_tolerance"] for r in rankings),
        "adaptive_counts_identity": identity,
        "adaptive_counts_identity_all": all(identity.values()),
        "single_precision_fidelity": fidelity,
        "single_precision_within_bound_all": all(
            f["within_bound"] for f in fidelity.values()
        ),
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------


def test_calibrated_lane_ranking_and_precision_bounds(tmp_path):
    """Acceptance, enforced on every host including 1-core: the modeled
    lane choice lands within tolerance of the measured-cheapest lane,
    adaptive routing is count-identical at complex128, and complex64 stays
    within the documented amplitude bound.  The JSON artifact lands
    either way."""
    report = run_suite(quick=True, profile_path=tmp_path / "calibration.json")
    write_trajectory_file(report, Path("BENCH_calibration.json"))
    assert report["adaptive_counts_identity_all"], report["adaptive_counts_identity"]
    assert report["single_precision_within_bound_all"], report[
        "single_precision_fidelity"
    ]
    assert report["ranking_within_tolerance_all"], report["lane_rankings"]
    for ranking in report["lane_rankings"]:
        print(
            f"\n{ranking['n_qubits']}q: modeled={ranking['modeled_choice']} "
            f"measured-cheapest={ranking['measured_cheapest']} "
            f"(agree={ranking['agreement']}, within tolerance)"
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer workloads/rounds")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_calibration.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    for ranking in report["lane_rankings"]:
        measured = {k: f"{v * 1e3:.2f}ms" for k, v in ranking["measured_seconds"].items()}
        print(
            f"{ranking['n_qubits']}q ({ranking['plan_steps']} steps): "
            f"modeled={ranking['modeled_choice']} measured={measured} "
            f"cheapest={ranking['measured_cheapest']} "
            f"within_tolerance={ranking['within_tolerance']}"
        )
    print(f"adaptive counts identical: {report['adaptive_counts_identity']}")
    worst = max(
        f["max_amplitude_deviation"]
        for f in report["single_precision_fidelity"].values()
    )
    print(f"complex64 worst amplitude deviation: {worst:.2e} (bound {AMPLITUDE_BOUND})")
    print(f"wrote {args.output}")
    ok = (
        report["ranking_within_tolerance_all"]
        and report["adaptive_counts_identity_all"]
        and report["single_precision_within_bound_all"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
