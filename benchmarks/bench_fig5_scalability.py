"""Figure 5 — strong scalability of two SHOR(N=7, a=2) kernels.

Paper speed-ups over single-threaded one-by-one execution:

=============  =====  =====  =====  =====  =====
total threads      2      4      6     12     24
one-by-one      1.72   3.06   4.18   6.53   6.53
parallel        1.89   3.27   4.72   7.69   7.82
=============  =====  =====  =====  =====  =====
"""

from __future__ import annotations

import pytest

from repro.benchmark.figures import (
    PAPER_FIGURE5_ONE_BY_ONE,
    PAPER_FIGURE5_PARALLEL,
    figure5,
)
from repro.benchmark.harness import BenchmarkHarness
from repro.benchmark.workloads import figure5_workload

_THREAD_COUNTS = [2, 4, 6, 12, 24]


@pytest.mark.parametrize("threads", _THREAD_COUNTS)
def test_fig5_one_by_one_modeled(benchmark, threads):
    """One-by-one execution of two SHOR(7, 2) kernels at a given team size."""
    harness = BenchmarkHarness(mode="modeled")
    workload = figure5_workload()
    result = benchmark(harness.run_variant, workload, "one-by-one", threads)
    benchmark.extra_info["paper_speedup_vs_1t"] = PAPER_FIGURE5_ONE_BY_ONE[threads]
    benchmark.extra_info["modeled_duration"] = result.duration


@pytest.mark.parametrize("threads", _THREAD_COUNTS)
def test_fig5_parallel_modeled(benchmark, threads):
    """Parallel execution (2 tasks x threads/2 each) of two SHOR(7, 2) kernels."""
    harness = BenchmarkHarness(mode="modeled")
    workload = figure5_workload()
    result = benchmark(harness.run_variant, workload, "parallel", threads)
    benchmark.extra_info["paper_speedup_vs_1t"] = PAPER_FIGURE5_PARALLEL[threads]
    benchmark.extra_info["modeled_duration"] = result.duration


def test_fig5_full_series_modeled(benchmark):
    """Regenerate the full strong-scaling series and check its shape."""
    series = benchmark(figure5, "modeled")
    measured = series.measured()
    benchmark.extra_info["paper"] = series.paper()
    benchmark.extra_info["measured"] = {k: round(v, 3) for k, v in measured.items()}
    one_by_one = [measured[f"one-by-one {t} threads"] for t in _THREAD_COUNTS]
    parallel = [measured[f"parallel 2 x ({t // 2} threads/task)"] for t in _THREAD_COUNTS]
    # Scaling is monotone up to the core count and flat into SMT territory.
    assert one_by_one[0] < one_by_one[1] < one_by_one[2] < one_by_one[3]
    assert one_by_one[4] == pytest.approx(one_by_one[3], rel=0.15)
    # The parallel variant wins at every total thread count (the paper's claim).
    for o, p in zip(one_by_one, parallel):
        assert p > o
