"""Fault-recovery benchmark — crashes must be cheap and hooks must be free.

Two contracts from the fault-tolerant lifecycle tier:

* **Recovery latency** — a shard worker killed mid-replay is respawned and
  its chunk re-executed; the job still completes bit-identically.  This
  benchmark kills one worker per round and reports the p50/p95 job latency
  of the recovering runs next to the clean baseline.  Recovery latency is
  reported, not gated — respawn cost is host-dependent (fork speed, page
  cache) — but every recovering run must return the baseline's exact
  counts.
* **Disabled-hooks overhead** — the fault-injection hooks
  (:func:`repro.testing.faults.fire`) sit on production hot paths: plan
  compilation, replay entry, shard worker loops.  Disarmed, each hook is
  one module-global read and a branch, and together they must add **less
  than 5%** to an in-process replay.  Like the observability gate, this
  binds on every host.

Run standalone (writes ``BENCH_fault_recovery.json``)::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_fault_recovery.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.exec import LocalBackend, ShardedExecutor
from repro.simulator.parallel_engine import ParallelSimulationEngine
from repro.testing import FaultSpec, clear_faults, install_faults
from repro.testing import faults as faults_module

from bench_shm_replay import deep_circuit

#: Replay latency with disarmed hooks vs hooks compiled out entirely.
OVERHEAD_LIMIT = 1.05
#: Recovery workload: small enough that respawn dominates honest replay
#: work, large enough that the counts comparison is meaningful.
RECOVERY_QUBITS = 10
RECOVERY_SHOTS = 256
#: Overhead workload: one hook firing per replay against 2^16 amplitudes
#: of real kernel work — large enough that scheduler jitter, not the hook,
#: does not dominate the ratio.
OVERHEAD_QUBITS = 16


def _best_of(rounds: int, fn) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_recovery(quick: bool) -> dict:
    """Kill one shard worker per round; time the recovering job."""
    rounds = 5 if quick else 15
    circuit = deep_circuit(RECOVERY_QUBITS, 2)

    clean = ShardedExecutor(2, name="bench-recovery-clean")
    try:
        expected = dict(clean.execute(circuit, RECOVERY_SHOTS, seed=23).counts)
        clean_seconds = _best_of(
            3, lambda: clean.execute(circuit, RECOVERY_SHOTS, seed=23)
        )
    finally:
        clean.close()

    recovery_seconds: list[float] = []
    total_retries = 0
    mismatches = 0
    for _ in range(rounds):
        # after=2: the warm-up execute consumes one hit per worker, so the
        # kill lands on the *timed* execute — respawn + chunk re-execution,
        # not pool construction, is what the clock sees.
        install_faults(
            [
                FaultSpec(
                    site="sharded.worker.replay",
                    action="kill",
                    after=2,
                    times=1,
                    scope="global",
                )
            ]
        )
        executor = ShardedExecutor(2, name="bench-recovery")
        try:
            warm = executor.execute(circuit, RECOVERY_SHOTS, seed=23)
            if dict(warm.counts) != expected:
                mismatches += 1
            retries_before = executor.total_retries
            started = time.perf_counter()
            result = executor.execute(circuit, RECOVERY_SHOTS, seed=23)
            recovery_seconds.append(time.perf_counter() - started)
            total_retries += executor.total_retries - retries_before
            if dict(result.counts) != expected:
                mismatches += 1
        finally:
            executor.close()
            clear_faults()
    return {
        "workload": "sharded_worker_kill",
        "n_qubits": RECOVERY_QUBITS,
        "shots": RECOVERY_SHOTS,
        "rounds": rounds,
        "clean_seconds": clean_seconds,
        "recovery_p50_seconds": _percentile(recovery_seconds, 0.50),
        "recovery_p95_seconds": _percentile(recovery_seconds, 0.95),
        "recovery_max_seconds": max(recovery_seconds),
        "retries_observed": total_retries,
        "count_mismatches": mismatches,
    }


def bench_disabled_overhead(quick: bool) -> dict:
    """In-process replay latency: disarmed hooks vs hooks compiled out."""
    layers = 2 if quick else 4
    rounds = 7 if quick else 11
    circuit = deep_circuit(OVERHEAD_QUBITS, layers)
    backend = LocalBackend(engine=ParallelSimulationEngine(num_threads=1))
    clear_faults()  # the "disabled" side must measure the disarmed fast path
    real_fire = faults_module.fire
    noop_fire = lambda site: None
    try:
        run = lambda: backend.execute(circuit, 64, seed=7)
        reference = run()  # warm the plan cache; both modes replay only

        # Interleave the two modes round by round so host drift (page
        # cache, scheduler) hits both sides equally; best-of then compares
        # like with like.  The "unhooked" floor erases the hook bodies —
        # the cost the codebase would pay if the harness did not exist.
        hooked_seconds = unhooked_seconds = float("inf")
        for _ in range(rounds):
            faults_module.fire = real_fire
            hooked_seconds = min(hooked_seconds, _best_of(1, run))
            faults_module.fire = noop_fire
            unhooked_seconds = min(unhooked_seconds, _best_of(1, run))

        faults_module.fire = real_fire
        identical = dict(run().counts) == dict(reference.counts)
    finally:
        faults_module.fire = real_fire
        backend.close()
    return {
        "workload": "plan_replay",
        "n_qubits": OVERHEAD_QUBITS,
        "layers": layers,
        "rounds": rounds,
        "unhooked_seconds": unhooked_seconds,
        "hooked_seconds": hooked_seconds,
        "overhead_ratio": hooked_seconds / unhooked_seconds,
        "limit": OVERHEAD_LIMIT,
        "counts_identical": bool(identical),
    }


def run_suite(quick: bool = False) -> dict:
    recovery = bench_recovery(quick)
    overhead = bench_disabled_overhead(quick)
    return {
        "benchmark": "fault_recovery",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "results": [recovery, overhead],
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_fault_recovery_and_hook_overhead():
    """Acceptance (all hosts): every killed-worker round recovers
    bit-identically with at least one retry, and the disarmed fault hooks
    add <5% to an in-process replay."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_fault_recovery.json"))
    recovery, overhead = report["results"]
    print(
        f"\nrecovery p95 {recovery['recovery_p95_seconds'] * 1e3:.1f}ms "
        f"(p50 {recovery['recovery_p50_seconds'] * 1e3:.1f}ms, clean "
        f"{recovery['clean_seconds'] * 1e3:.1f}ms, "
        f"{recovery['retries_observed']} retries/{recovery['rounds']} rounds); "
        f"disarmed hooks {(overhead['overhead_ratio'] - 1) * 100:+.2f}% "
        f"(limit +{(OVERHEAD_LIMIT - 1) * 100:.0f}%)"
    )
    assert recovery["count_mismatches"] == 0, recovery
    assert recovery["retries_observed"] >= recovery["rounds"], recovery
    assert overhead["counts_identical"], overhead
    assert overhead["overhead_ratio"] < OVERHEAD_LIMIT, overhead


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer rounds")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_fault_recovery.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    recovery, overhead = report["results"]
    print(
        f"worker-kill recovery at {recovery['n_qubits']} qubits: "
        f"p50 {recovery['recovery_p50_seconds'] * 1e3:.1f}ms, "
        f"p95 {recovery['recovery_p95_seconds'] * 1e3:.1f}ms, "
        f"max {recovery['recovery_max_seconds'] * 1e3:.1f}ms "
        f"(clean best-of {recovery['clean_seconds'] * 1e3:.1f}ms, "
        f"{recovery['retries_observed']} retries over {recovery['rounds']} rounds)"
    )
    print(
        f"disarmed-hook overhead at {overhead['n_qubits']} qubits: "
        f"unhooked {overhead['unhooked_seconds'] * 1e3:.1f}ms, "
        f"hooked {overhead['hooked_seconds'] * 1e3:.1f}ms "
        f"({(overhead['overhead_ratio'] - 1) * 100:+.2f}%, "
        f"limit +{(OVERHEAD_LIMIT - 1) * 100:.0f}%, enforced on all hosts)"
    )
    print(f"wrote {args.output}")
    ok = (
        recovery["count_mismatches"] == 0
        and recovery["retries_observed"] >= recovery["rounds"]
        and overhead["counts_identical"]
        and overhead["overhead_ratio"] < OVERHEAD_LIMIT
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
