"""Ablation A1 — cost and behaviour of the thread-safety machinery.

The paper adds mutexes and per-thread accelerator clones.  This ablation
quantifies (a) the overhead of the locked, cloneable path versus the legacy
shared path when there is *no* concurrency (the price single-threaded users
pay), and (b) the throughput of concurrent allocation / service lookup with
the thread-safe implementation.
"""

from __future__ import annotations

import concurrent.futures

import pytest

from repro.config import set_config
from repro.core.api import qalloc
from repro.runtime.service_registry import get_accelerator


@pytest.mark.parametrize("thread_safe", [True, False], ids=["thread-safe", "legacy"])
def test_single_threaded_qalloc_overhead(benchmark, thread_safe):
    """Price of the Listing 6 mutex when only one thread allocates."""
    set_config(thread_safe=thread_safe, detect_races=False)

    def allocate_batch():
        for _ in range(100):
            qalloc(2)

    benchmark(allocate_batch)


@pytest.mark.parametrize("thread_safe", [True, False], ids=["thread-safe", "legacy"])
def test_single_threaded_accelerator_lookup_overhead(benchmark, thread_safe):
    """Price of cloneable accelerator resolution vs the shared singleton."""
    set_config(thread_safe=thread_safe, detect_races=False)

    def lookup_batch():
        for _ in range(50):
            get_accelerator("qpp")

    benchmark(lookup_batch)


def test_concurrent_qalloc_throughput_thread_safe(benchmark):
    """Concurrent allocation throughput with the paper's locking in place."""
    set_config(thread_safe=True, detect_races=False)

    def allocate_concurrently():
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: [qalloc(2) for _ in range(25)], range(8)))

    benchmark.pedantic(allocate_concurrently, rounds=5, iterations=1)


def test_concurrent_kernel_execution_thread_safe(benchmark):
    """Two concurrent Bell kernels through the full thread-safe stack."""
    from repro.algorithms.bell import bell_circuit
    from repro.core.executor import KernelTask, run_parallel

    tasks = [
        KernelTask(f"bell_{i}", lambda: bell_circuit(2), 2, shots=128) for i in range(2)
    ]
    report = benchmark.pedantic(run_parallel, args=(tasks, 2), rounds=5, iterations=1)
    benchmark.extra_info["wall_seconds"] = report.wall_time_seconds
