"""Substrate benchmarks — raw simulator and compiler throughput.

These do not correspond to a figure in the paper; they characterise the
building blocks (the Quantum++-replacement state-vector engine, the XASM
compiler and the IR optimiser) so regressions in the substrate are visible
independently of the figure-level results.
"""

from __future__ import annotations

import pytest

from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.compiler.parser import compile_xasm
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.ir.transforms import default_pass_manager
from repro.simulator.execution_plan import compile_parametric_plan, compile_plan
from repro.simulator.statevector import StateVector

_BELL_SOURCE = """
H(q[0]);
CX(q[0], q[1]);
for (int i = 0; i < q.size(); i++) {
  Measure(q[i]);
}
"""


@pytest.mark.parametrize("n_qubits", [8, 12, 16], ids=lambda n: f"{n}q")
def test_ghz_statevector_evolution(benchmark, n_qubits):
    """Dense evolution of an n-qubit GHZ preparation circuit."""
    circuit = CircuitBuilder(n_qubits).h(0).build()
    for target in range(1, n_qubits):
        circuit.add(CircuitBuilder(n_qubits).cx(target - 1, target).build())

    def run():
        state = StateVector(n_qubits)
        state.apply_circuit(circuit)
        return state

    benchmark(run)


@pytest.mark.parametrize("n_qubits", [6, 10], ids=lambda n: f"{n}q")
def test_qft_statevector_evolution(benchmark, n_qubits):
    """Dense evolution of the QFT (quadratic gate count in width)."""
    circuit = qft_circuit(n_qubits)

    def run():
        state = StateVector(n_qubits)
        state.apply_circuit(circuit)
        return state

    benchmark(run)


def test_shor_period_finding_simulation(benchmark):
    """Full SHOR(N=15, a=2) kernel: the paper's Figure 4 unit of work."""
    circuit = period_finding_circuit(15, 2)

    def run():
        state = StateVector(circuit.n_qubits)
        state.apply_circuit(circuit.without_measurements())
        return state.sample(10)

    benchmark(run)


@pytest.mark.parametrize("n_qubits", [6, 10], ids=lambda n: f"{n}q")
def test_qft_plan_replay(benchmark, n_qubits):
    """QFT evolution through a pre-compiled execution plan (vs the naive
    gate-by-gate numbers from test_qft_statevector_evolution)."""
    plan = compile_plan(qft_circuit(n_qubits), n_qubits)

    def run():
        return plan.execute(plan.new_state())

    benchmark(run)


def test_parametric_ansatz_plan_rebind(benchmark):
    """One optimiser iteration: re-bind the cached plan's rotations + replay."""
    n_qubits, layers = 8, 3
    builder = CircuitBuilder(n_qubits, name="hwe_ansatz")
    names = []
    for layer in range(layers):
        for qubit in range(n_qubits):
            name = f"t{layer}_{qubit}"
            names.append(name)
            builder.ry(qubit, Parameter(name))
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
    circuit = builder.build()
    plan = compile_parametric_plan(circuit, n_qubits)
    values = [0.1 * i for i in range(len(names))]

    def iteration():
        bound = plan.bind(values)
        return bound.execute(bound.new_state())

    benchmark(iteration)


def test_xasm_compilation_throughput(benchmark):
    """Compiling the Listing 1 Bell kernel from XASM text."""
    benchmark(compile_xasm, _BELL_SOURCE, "q", 2)


def test_ir_optimisation_throughput(benchmark):
    """Default pass-manager over a redundant 200-gate circuit."""
    builder = CircuitBuilder(4)
    for i in range(50):
        builder.h(i % 4).h(i % 4).rz(i % 4, 0.1).rz(i % 4, -0.1)
    circuit = builder.build()
    manager = default_pass_manager()
    out = benchmark(manager.run, circuit)
    assert out.n_instructions < circuit.n_instructions
