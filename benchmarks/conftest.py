"""Shared fixtures for the benchmark suite (pytest-benchmark)."""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.config import reset_config, set_config  # noqa: E402
from repro.core.qpu_manager import QPUManager  # noqa: E402
from repro.core.race_detector import reset_race_detector  # noqa: E402
from repro.obs import disable_profiler, disable_tracing, get_tracer  # noqa: E402
from repro.runtime.allocation import clear_allocated_buffers  # noqa: E402
from repro.runtime.service_registry import reset_registry  # noqa: E402


def _reset_observability():
    disable_tracing()
    disable_profiler()
    get_tracer().clear()


@pytest.fixture(autouse=True)
def clean_runtime_state():
    """Benchmarks share the same global-state hygiene as the test suite."""
    reset_config()
    set_config(seed=1234)
    reset_registry()
    QPUManager.reset_instance()
    reset_race_detector()
    clear_allocated_buffers()
    _reset_observability()
    yield
    reset_config()
    reset_registry()
    QPUManager.reset_instance()
    reset_race_detector()
    clear_allocated_buffers()
    _reset_observability()
