"""Parameter-sweep benchmark — compile-once fan-out vs independent submits.

The workload is the paper's dominant variational shape: one hardware-
efficient VQE ansatz, many parameter bindings (an optimiser sweep or a
parameter-shift gradient batch).  ``submit_sweep`` compiles the parametric
plan once and fans the bindings out with in-place trig rebinds; the
baseline binds and submits each point as its own job, recompiling and
re-dispatching every time.

Acceptance:

* per-binding counts bit-identical to independent submissions at a fixed
  seed — gated on **every** host;
* parameter-shift gradients agree with central finite differences to
  1e-6 — gated on every host;
* ≥3x cold-path speedup for the 32-binding 16-qubit sweep — enforced only
  on hosts with ≥4 cores (single-core CI records the ratio without
  gating; the fan-out has no parallelism to exploit there).

Run standalone (writes the ``BENCH_sweep.json`` trajectory file)::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.config import set_config
from repro.core.objective import createObjectiveFunction
from repro.ir.builder import CircuitBuilder
from repro.ir.parameter import Parameter
from repro.operators import X, Z
from repro.runtime.service_registry import reset_registry
from repro.service import QuantumJobService

SPEEDUP_TARGET = 3.0
#: Below this many cores the fan-out cannot express parallelism, so the
#: speedup is recorded for the trajectory but not gated.
MIN_CORES_FOR_TARGET = 4
SEED = 20230523  # fixed: the bit-identity contract only exists at a seed


def host_cores() -> int:
    return os.cpu_count() or 1


def threshold_enforced() -> bool:
    return host_cores() >= MIN_CORES_FOR_TARGET


def vqe_ansatz(n_qubits: int, layers: int = 2):
    """Parametric hardware-efficient RY/CX ansatz with measurements."""
    builder = CircuitBuilder(n_qubits, name=f"sweep_vqe_{n_qubits}q")
    index = 0
    for _ in range(layers):
        for qubit in range(n_qubits):
            builder.ry(qubit, Parameter(f"t{index:03d}"))
            index += 1
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
    for qubit in range(n_qubits):
        builder.measure(qubit)
    return builder.build(), index


def sweep_bindings(n_bindings: int, n_params: int):
    rng = np.random.default_rng(SEED)
    return [list(rng.uniform(-np.pi, np.pi, n_params)) for _ in range(n_bindings)]


def bench_sweep_fanout(quick: bool) -> dict:
    """Cold-path wall clock: one sweep vs N independent submits."""
    n_qubits = 12 if quick else 16
    n_bindings = 8 if quick else 32
    shots = 1024
    circuit, n_params = vqe_ansatz(n_qubits)
    bindings = sweep_bindings(n_bindings, n_params)
    workers = min(4, host_cores())

    # Baseline first so its plan-cache warmup cannot subsidise the sweep.
    reset_registry()
    set_config(seed=SEED)
    independent_counts = []
    with QuantumJobService(
        workers=workers, enable_cache=False, name="bench-independent"
    ) as service:
        started = time.perf_counter()
        handles = [
            service.submit(circuit.bind(values), shots=shots) for values in bindings
        ]
        independent_counts = [
            dict(h.result(timeout=600).counts) for h in handles
        ]
        independent_seconds = time.perf_counter() - started

    reset_registry()
    set_config(seed=SEED)
    with QuantumJobService(
        workers=workers, enable_cache=False, name="bench-sweep"
    ) as service:
        started = time.perf_counter()
        table = service.submit_sweep(circuit, bindings, shots=shots).result(
            timeout=600
        )
        sweep_seconds = time.perf_counter() - started
        metrics = service.metrics()

    sweep_counts = [dict(row.counts) for row in table]
    identical = sweep_counts == independent_counts
    return {
        "case": "sweep_fanout",
        "n_qubits": n_qubits,
        "n_bindings": n_bindings,
        "shots": shots,
        "workers": workers,
        "independent_seconds": independent_seconds,
        "sweep_seconds": sweep_seconds,
        "speedup": independent_seconds / sweep_seconds,
        "fanout_chunks": metrics.sweep_fanout,
        "counts_bit_identical": identical,
        "target": SPEEDUP_TARGET,
        "target_enforced": threshold_enforced(),
    }


def bench_gradient(quick: bool) -> dict:
    """Parameter-shift through the service vs central finite differences."""
    n_qubits = 3
    circuit, n_params = vqe_ansatz(n_qubits, layers=1)
    # Expectation sweeps need the bare ansatz (no terminal measurements).
    builder = CircuitBuilder(n_qubits, name="sweep_grad")
    index = 0
    for qubit in range(n_qubits):
        builder.ry(qubit, Parameter(f"t{index:03d}"))
        index += 1
    for qubit in range(n_qubits - 1):
        builder.cx(qubit, qubit + 1)
    ansatz = builder.build()
    observable = 1.5 * Z(0) + 0.7 * Z(1) * Z(2) + 0.4 * X(0) * X(1)
    rng = np.random.default_rng(SEED + 1)
    theta = rng.uniform(-np.pi, np.pi, index)

    reset_registry()
    set_config(seed=SEED)
    step = 1e-4
    with QuantumJobService(workers=2, name="bench-gradient") as service:
        started = time.perf_counter()
        grad = service.gradient(ansatz, observable, theta)
        gradient_seconds = time.perf_counter() - started

        fd = np.zeros(index)
        for i in range(index):
            plus, minus = theta.copy(), theta.copy()
            plus[i] += step
            minus[i] -= step
            e_plus, e_minus = service.expectations(
                ansatz, observable, [list(plus), list(minus)]
            )
            fd[i] = (e_plus - e_minus) / (2.0 * step)

    serial = createObjectiveFunction(
        ansatz, observable, n_qubits, index, {"gradient-strategy": "parameter-shift"}
    ).gradient(theta)
    return {
        "case": "parameter_shift_gradient",
        "n_parameters": index,
        "gradient_seconds": gradient_seconds,
        "max_error_vs_central_fd": float(np.max(np.abs(grad - fd))),
        "max_error_vs_serial_shift": float(np.max(np.abs(grad - serial))),
        "fd_tolerance": 1e-6,
    }


def run_suite(quick: bool = False) -> dict:
    fanout = bench_sweep_fanout(quick)
    gradient = bench_gradient(quick)
    set_config(seed=None)
    reset_registry()
    return {
        "benchmark": "sweep",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": host_cores(),
        "results": [fanout, gradient],
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_sweep_identity_gradient_and_speedup():
    """Acceptance: bit-identical counts and 1e-6 gradients on every host;
    ≥3x fan-out speedup on ≥4-core hosts.  The JSON file lands either way."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_sweep.json"))
    fanout, gradient = report["results"]
    assert fanout["counts_bit_identical"], fanout
    assert gradient["max_error_vs_central_fd"] < gradient["fd_tolerance"], gradient
    assert gradient["max_error_vs_serial_shift"] < 1e-9, gradient
    print(
        f"\nsweep fan-out {fanout['speedup']:.2f}x over independent submits "
        f"({fanout['n_bindings']} bindings, {fanout['n_qubits']} qubits, "
        f"{report['cpu_count']} cores, target {SPEEDUP_TARGET}x "
        f"{'enforced' if fanout['target_enforced'] else 'recorded only'})"
    )
    if fanout["target_enforced"]:
        assert fanout["speedup"] >= SPEEDUP_TARGET, fanout


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_sweep.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    fanout, gradient = report["results"]
    enforced = "enforced" if fanout["target_enforced"] else "recorded only"
    print(
        f"sweep fan-out: {fanout['speedup']:.2f}x vs independent submits "
        f"({fanout['n_bindings']} bindings, {fanout['n_qubits']} qubits, "
        f"target {SPEEDUP_TARGET}x {enforced}); "
        f"counts identical: {fanout['counts_bit_identical']}; "
        f"gradient max FD error {gradient['max_error_vs_central_fd']:.2e}"
    )
    ok = fanout["counts_bit_identical"] and (
        gradient["max_error_vs_central_fd"] < gradient["fd_tolerance"]
    )
    if fanout["target_enforced"]:
        ok = ok and fanout["speedup"] >= SPEEDUP_TARGET
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
