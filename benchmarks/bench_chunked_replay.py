"""Chunked-replay benchmark — chunk-parallel plan replay + diagonal batching.

Measures the two large-state execution-plan optimisations:

* **Chunk-parallel replay**: one deep 18-qubit circuit replayed serially vs
  replayed with every kernel split across a
  :class:`~repro.simulator.parallel_engine.ParallelSimulationEngine` worker
  pool (the path `LocalBackend`, the sharded workers and `StateVector.run`
  all use for states at or above the chunk threshold).
* **Diagonal batching**: the QFT's CPHASE ladders collapsed into combined
  product-diagonal steps — reported as the plan step-count reduction.

Acceptance: chunked amplitudes must be **bitwise identical** to the serial
replay, the QFT step count must shrink, and fixed-seed counts must be
identical with and without the tuning knobs across bell/ghz/qft/shor/vqe on
every backend (local, density, sharded) — all enforced everywhere.  The
>= 1.5x chunked-replay speedup is enforced only on hosts with >= 4 CPU
cores (recorded on smaller hosts, where there is nothing to win).

Run standalone (writes the ``BENCH_chunked_replay.json`` trajectory file)::

    PYTHONPATH=src python benchmarks/bench_chunked_replay.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_chunked_replay.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.exec import DensityBackend, LocalBackend, ShardedExecutor
from repro.ir.builder import CircuitBuilder
from repro.simulator.execution_plan import compile_plan
from repro.simulator.parallel_engine import ParallelSimulationEngine

SPEEDUP_TARGET = 1.5
#: The 1.5x chunked-replay target only binds where threads can win.
MIN_CORES_FOR_TARGET = 4
#: The regime the paper's scaling experiments target (2^18 amplitudes).
REPLAY_QUBITS = 18


def host_cores() -> int:
    return os.cpu_count() or 1


def threshold_enforced() -> bool:
    return host_cores() >= MIN_CORES_FOR_TARGET


# ---------------------------------------------------------------------------
# Workload: one deep large-state circuit, replayed serial vs chunked
# ---------------------------------------------------------------------------


def deep_circuit(n_qubits: int, layers: int):
    """RY layers + CX ladder + CPHASE ladder: hits the single, permutation
    and diagonal kernels (the CPHASE runs also exercise batching)."""
    builder = CircuitBuilder(n_qubits, name=f"deep_{n_qubits}q")
    for layer in range(layers):
        for qubit in range(n_qubits):
            builder.ry(qubit, 0.1 + 0.2 * layer + 0.05 * qubit)
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
        for qubit in range(n_qubits - 1):
            builder.cphase(qubit, qubit + 1, 0.3 + 0.02 * qubit)
    return builder.build()


def _best_of(rounds: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def bench_chunked_replay(quick: bool) -> dict:
    layers = 3 if quick else 6
    rounds = 2 if quick else 4
    workers = min(4, max(2, host_cores()))
    circuit = deep_circuit(REPLAY_QUBITS, layers)
    plan = compile_plan(circuit, REPLAY_QUBITS)

    serial_state = plan.execute(plan.new_state())
    with ParallelSimulationEngine(num_threads=workers) as engine:
        chunked_state = plan.execute(plan.new_state(), pool=engine)
        bitwise_identical = bool(np.array_equal(serial_state, chunked_state))
        serial_seconds = _best_of(
            rounds, lambda: plan.execute(plan.new_state())
        )
        chunked_seconds = _best_of(
            rounds, lambda: plan.execute(plan.new_state(), pool=engine)
        )
    return {
        "workload": "single_state_replay",
        "n_qubits": REPLAY_QUBITS,
        "layers": layers,
        "plan_steps": plan.n_steps,
        "batched_diagonals": plan.batched_diagonals,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "chunked_seconds": chunked_seconds,
        "speedup": serial_seconds / chunked_seconds,
        "amplitudes_bitwise_identical": bitwise_identical,
        "target": SPEEDUP_TARGET,
        "target_enforced": threshold_enforced(),
    }


# ---------------------------------------------------------------------------
# Diagonal batching: QFT step-count reduction
# ---------------------------------------------------------------------------


def bench_qft_step_reduction(n_qubits: int = 16) -> dict:
    circuit = qft_circuit(n_qubits)
    unbatched = compile_plan(circuit, n_qubits, batch_diagonals=False)
    batched = compile_plan(circuit, n_qubits)
    return {
        "workload": "qft_diagonal_batching",
        "n_qubits": n_qubits,
        "unbatched_steps": unbatched.n_steps,
        "batched_steps": batched.n_steps,
        "diagonals_absorbed": batched.batched_diagonals,
        "step_reduction": 1.0 - batched.n_steps / unbatched.n_steps,
    }


# ---------------------------------------------------------------------------
# Acceptance identity: tuning knobs never move a count, on any backend
# ---------------------------------------------------------------------------


def algorithm_suite():
    shor = period_finding_circuit(15, 2)
    vqe = deuteron_ansatz_circuit(0.59)
    return {
        "bell": (bell_circuit(2), 2),
        "ghz": (ghz_circuit(5), 5),
        "qft": (qft_circuit(6), 6),
        "shor": (shor, shor.n_qubits),
        "vqe": (vqe, max(vqe.n_qubits, 2)),
    }


def check_identity(shots: int = 512, seed: int = 1234) -> dict:
    """Per backend: counts with the knobs at their defaults-off extreme
    (no batching, chunking disabled) vs fully on (batching + chunking
    forced).  Chunking is bitwise-neutral and batching is bit-exact from
    |0...0> on this suite, so the histograms must be identical — local,
    sharded and density (where the knobs are ignored) alike.  The density
    lane swaps in a 9-qubit Shor instance: density evolution is O(4^n) per
    gate, so the 12-qubit period-finding circuit would take minutes for a
    check that is backend-independent anyway."""
    off = {"batch_diagonals": False, "chunk_threshold": 1 << 30}
    on = {"batch_diagonals": True, "chunk_threshold": 2}
    small_shor = period_finding_circuit(7, 3)
    results: dict[str, dict[str, bool]] = {}

    local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
    density = DensityBackend()
    with ShardedExecutor(2, name="bench-chunk-identity") as sharded:
        for name, (circuit, width) in algorithm_suite().items():
            per_backend = {}
            for backend_name, backend in (
                ("local", local),
                ("sharded", sharded),
                ("density", density),
            ):
                if backend_name == "density" and name == "shor":
                    job, job_width = small_shor, small_shor.n_qubits
                else:
                    job, job_width = circuit, width
                reference = backend.execute(
                    job, shots, n_qubits=job_width, seed=seed, **off
                )
                tuned = backend.execute(
                    job, shots, n_qubits=job_width, seed=seed, **on
                )
                per_backend[backend_name] = dict(reference.counts) == dict(
                    tuned.counts
                )
            results[name] = per_backend
    local.close()
    return results


def run_suite(quick: bool = False) -> dict:
    identity = check_identity()
    identity_all = all(ok for algo in identity.values() for ok in algo.values())
    replay = bench_chunked_replay(quick)
    reduction = bench_qft_step_reduction()
    return {
        "benchmark": "chunked_replay",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": host_cores(),
        "results": [replay, reduction],
        "counts_identity": identity,
        "counts_identity_all": identity_all,
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_chunked_replay_speedup_and_identity():
    """Acceptance: bitwise amplitudes, QFT step reduction and cross-backend
    counts identity everywhere; >= 1.5x chunked replay on >= 4-core hosts.
    The JSON trajectory file lands either way."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_chunked_replay.json"))
    replay, reduction = report["results"]
    assert replay["amplitudes_bitwise_identical"]
    assert reduction["batched_steps"] < reduction["unbatched_steps"]
    assert reduction["diagonals_absorbed"] > 0
    assert report["counts_identity_all"], report["counts_identity"]
    print(
        f"\nchunked replay {replay['speedup']:.2f}x over serial at "
        f"{replay['n_qubits']} qubits ({replay['workers']} workers, "
        f"{report['cpu_count']} cores, target {SPEEDUP_TARGET}x "
        f"{'enforced' if replay['target_enforced'] else 'recorded only'}); "
        f"QFT steps {reduction['unbatched_steps']} -> {reduction['batched_steps']}"
    )
    if replay["target_enforced"]:
        assert replay["speedup"] >= SPEEDUP_TARGET, replay


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer layers/rounds")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_chunked_replay.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    replay, reduction = report["results"]
    enforced = "enforced" if replay["target_enforced"] else "recorded only"
    print(
        f"single-state replay: {replay['speedup']:.2f}x at {replay['n_qubits']} "
        f"qubits (target {SPEEDUP_TARGET}x, {enforced}; {replay['workers']} "
        f"workers on {report['cpu_count']} core(s)); bitwise identical: "
        f"{replay['amplitudes_bitwise_identical']}"
    )
    print(
        f"qft diagonal batching: {reduction['unbatched_steps']} -> "
        f"{reduction['batched_steps']} steps "
        f"({reduction['step_reduction']:.0%} fewer, "
        f"{reduction['diagonals_absorbed']} diagonals absorbed)"
    )
    print(f"counts identity (local/sharded/density): {report['counts_identity']}")
    print(f"wrote {args.output}")
    ok = (
        report["counts_identity_all"]
        and replay["amplitudes_bitwise_identical"]
        and reduction["batched_steps"] < reduction["unbatched_steps"]
    )
    if replay["target_enforced"]:
        ok = ok and replay["speedup"] >= SPEEDUP_TARGET
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
