"""Listing 3 workload — deuteron VQE end-to-end.

Not a figure in the paper, but the VQE workflow is its Listing 3 and one of
the Section VII scenarios for user-level multi-threading; this benchmark
times the single-threaded optimisation and the asynchronous multi-start
variant (several optimisations from different initial angles running
concurrently on their own QPU instances).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.vqe import run_deuteron_vqe
from repro.core.threading_api import TaskGroup


def test_vqe_single_start(benchmark):
    """One L-BFGS VQE run with exact (state-vector) expectations."""
    result = benchmark(run_deuteron_vqe, "l-bfgs")
    benchmark.extra_info["energy_error"] = result.error
    assert result.error < 1e-3


def test_vqe_nelder_mead(benchmark):
    """Derivative-free VQE run (the QCOR default style)."""
    result = benchmark(run_deuteron_vqe, "nelder-mead")
    assert result.error < 1e-3


def test_vqe_parallel_multistart(benchmark):
    """Four asynchronous VQE instances exploring different initial angles.

    This is the "pleasantly parallel optimisation" scenario of Section VII:
    each start runs on its own user thread with its own QPU clone.
    """
    initial_angles = [0.0, 0.5, 1.5, -1.0]

    def multistart() -> float:
        with TaskGroup() as group:
            for theta in initial_angles:
                group.launch(run_deuteron_vqe, "l-bfgs", "central", True, None, theta)
        return min(result.optimal_energy for result in group.results())

    best = benchmark.pedantic(multistart, rounds=3, iterations=1)
    benchmark.extra_info["best_energy"] = best
    assert best == pytest.approx(-1.74886, abs=1e-3)


def test_vqe_sampled_objective_evaluation(benchmark):
    """Cost of a single sampled (4096-shot) objective evaluation."""
    from repro.algorithms.vqe import deuteron_ansatz_circuit, deuteron_hamiltonian
    from repro.core.objective import createObjectiveFunction

    objective = createObjectiveFunction(
        deuteron_ansatz_circuit(), deuteron_hamiltonian(), 2, 1,
        {"exact": False, "shots": 4096},
    )
    value = benchmark(objective, np.array([0.59]))
    benchmark.extra_info["energy"] = value
