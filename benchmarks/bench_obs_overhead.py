"""Observability overhead benchmark — tracing/profiling must stay cheap.

The observability layer (:mod:`repro.obs`) instruments the hottest paths in
the repo: ``ExecutionPlan.execute``'s kernel loop, ``LocalBackend.execute``
and the broker's dispatch path.  Its contract is *pay only when switched
on*: disabled, every hook is one global read and a branch; enabled,
tracing + per-kernel profiling together must add **less than 5%** to an
18-qubit plan replay.

Unlike the speedup benchmarks, the overhead gate binds on **every** host —
a 1-core container measures a branch and a ``perf_counter`` call exactly as
well as a 64-core box does.

Run standalone (writes ``BENCH_obs_overhead.json`` and a Chrome trace
artifact loadable in Perfetto/chrome://tracing)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.exec import LocalBackend
from repro.obs import (
    disable_profiler,
    disable_tracing,
    enable_profiler,
    enable_tracing,
    get_tracer,
    to_chrome_trace,
)
from repro.simulator.parallel_engine import ParallelSimulationEngine

from bench_shm_replay import deep_circuit

#: Enabled-observability overhead ceiling vs the disabled baseline.
OVERHEAD_LIMIT = 1.05
#: Replay size: 2^18 amplitudes keeps each kernel step large enough that
#: per-step timer calls are measured against real work, not loop overhead.
REPLAY_QUBITS = 18
#: Few shots: the gate targets the replay loop, not the sampler.
SHOTS = 64


def _best_of(rounds: int, fn) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_overhead(quick: bool) -> dict:
    """Best-of replay latency, observability off vs fully on."""
    layers = 2 if quick else 4
    rounds = 3 if quick else 5
    circuit = deep_circuit(REPLAY_QUBITS, layers)
    backend = LocalBackend(engine=ParallelSimulationEngine(num_threads=1))
    tracer = get_tracer()
    try:
        run = lambda: backend.execute(circuit, SHOTS, seed=7)
        reference = run()  # warm the plan cache; both modes replay only

        disable_tracing()
        disable_profiler()
        disabled_seconds = _best_of(rounds, run)

        enable_tracing()
        enable_profiler()
        traced = run()
        enabled_seconds = _best_of(rounds, run)
        identical = bool(dict(traced.counts) == dict(reference.counts))
    finally:
        disable_tracing()
        disable_profiler()
        backend.close()
    span_count = len(tracer.spans())
    return {
        "workload": "plan_replay",
        "n_qubits": REPLAY_QUBITS,
        "layers": layers,
        "shots": SHOTS,
        "rounds": rounds,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "overhead_ratio": enabled_seconds / disabled_seconds,
        "limit": OVERHEAD_LIMIT,
        "spans_recorded": span_count,
        "counts_identical_with_obs": identical,
    }


def traced_workload_artifact(output: Path) -> dict:
    """One fully-traced + profiled job; writes the Chrome trace artifact.

    This is the CI smoke artifact: a real execution's span tree rendered as
    trace-event JSON so a failing run can be *looked at* in Perfetto.
    """
    circuit = deep_circuit(10, 2)
    backend = LocalBackend(engine=ParallelSimulationEngine(num_threads=1))
    tracer = enable_tracing()
    profiler = enable_profiler()
    try:
        with tracer.span("bench-job", attrs={"workload": "obs-smoke"}) as root:
            backend.execute(circuit, 128, seed=7)
        spans = tracer.spans(root.trace_id)
        document = to_chrome_trace(spans)
        output.write_text(document + "\n")
        json.loads(document)  # the artifact must be loadable JSON
        snapshot = profiler.snapshot()
        return {
            "trace_file": str(output),
            "spans": len(spans),
            "kernel_classes": sorted(snapshot.kernels),
            "total_kernel_seconds": snapshot.total_kernel_seconds,
        }
    finally:
        disable_tracing()
        disable_profiler()
        backend.close()


def run_suite(quick: bool = False, trace_output: Path | None = None) -> dict:
    overhead = bench_overhead(quick)
    artifact = traced_workload_artifact(trace_output or Path("BENCH_obs_trace.json"))
    return {
        "benchmark": "obs_overhead",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "results": [overhead],
        "trace_artifact": artifact,
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_obs_overhead_under_limit():
    """Acceptance (all hosts): tracing + profiling enabled adds <5% to an
    18-qubit replay, perturbs no counts, and the traced run's Chrome trace
    artifact is valid JSON."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_obs_overhead.json"))
    (overhead,) = report["results"]
    print(
        f"\nobs overhead at {overhead['n_qubits']} qubits: "
        f"{(overhead['overhead_ratio'] - 1) * 100:+.2f}% "
        f"(disabled {overhead['disabled_seconds'] * 1e3:.1f}ms, "
        f"enabled {overhead['enabled_seconds'] * 1e3:.1f}ms, "
        f"limit +{(OVERHEAD_LIMIT - 1) * 100:.0f}%)"
    )
    assert overhead["counts_identical_with_obs"], "observability changed counts"
    assert overhead["spans_recorded"] > 0
    assert overhead["overhead_ratio"] < OVERHEAD_LIMIT, overhead
    assert report["trace_artifact"]["spans"] > 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer layers/rounds")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_obs_overhead.json"),
        help="where to write the JSON trajectory file",
    )
    parser.add_argument(
        "--trace-output",
        type=Path,
        default=Path("BENCH_obs_trace.json"),
        help="where to write the Chrome trace-event artifact",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick, trace_output=args.trace_output)
    write_trajectory_file(report, args.output)
    (overhead,) = report["results"]
    print(
        f"plan replay at {overhead['n_qubits']} qubits: "
        f"disabled {overhead['disabled_seconds'] * 1e3:.1f}ms, "
        f"enabled {overhead['enabled_seconds'] * 1e3:.1f}ms "
        f"({(overhead['overhead_ratio'] - 1) * 100:+.2f}%, "
        f"limit +{(OVERHEAD_LIMIT - 1) * 100:.0f}%, enforced on all hosts)"
    )
    print(
        f"counts identical with obs on: {overhead['counts_identical_with_obs']}; "
        f"spans recorded: {overhead['spans_recorded']}"
    )
    print(
        f"chrome trace artifact: {report['trace_artifact']['trace_file']} "
        f"({report['trace_artifact']['spans']} spans, kernels "
        f"{report['trace_artifact']['kernel_classes']})"
    )
    print(f"wrote {args.output}")
    ok = (
        overhead["counts_identical_with_obs"]
        and overhead["overhead_ratio"] < OVERHEAD_LIMIT
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
