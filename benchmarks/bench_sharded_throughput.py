"""Sharded-broker benchmark — process-sharded dispatch vs in-process dispatch.

Measures what :class:`repro.service.QuantumJobService`'s ``processes=N``
mode buys on a **cache-miss load**: a stream of distinct circuits (every
job a result-cache miss, so every job costs a real compile + simulate).
The in-process dispatcher serialises that work behind the GIL no matter
how many dispatcher threads it runs; the sharded dispatcher hands each job
to the worker *process* owning its key, so compiles and simulations truly
overlap.

Acceptance (enforced on hosts with >= 4 CPU cores; recorded only on
smaller hosts, where process parallelism has nothing to win): sharded
throughput >= 2x the single-process dispatcher, with fixed-seed counts
bit-identical between sharded and in-process execution across
bell/ghz/qft/shor/vqe.

Run standalone (writes the ``BENCH_sharded_throughput.json`` trajectory
file)::

    PYTHONPATH=src python benchmarks/bench_sharded_throughput.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_throughput.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.config import set_config
from repro.exec import LocalBackend, ShardedExecutor
from repro.ir.builder import CircuitBuilder
from repro.service import QuantumJobService
from repro.simulator.parallel_engine import ParallelSimulationEngine

SPEEDUP_TARGET = 2.0
#: The 2x acceptance target only binds where process parallelism can win.
MIN_CORES_FOR_TARGET = 4


def host_cores() -> int:
    return os.cpu_count() or 1


def threshold_enforced() -> bool:
    return host_cores() >= MIN_CORES_FOR_TARGET


# ---------------------------------------------------------------------------
# Workload: a cache-miss stream of distinct circuits
# ---------------------------------------------------------------------------


def distinct_circuit(index: int, n_qubits: int = 9, layers: int = 4):
    """Job ``index``'s unique circuit: same shape, distinct rotation angles
    (distinct content hash), so the result cache can never serve it."""
    builder = CircuitBuilder(n_qubits, name=f"job_{index}")
    for layer in range(layers):
        for qubit in range(n_qubits):
            builder.ry(qubit, 0.1 + 0.01 * index + 0.2 * layer + 0.05 * qubit)
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
        for qubit in range(0, n_qubits - 1, 2):
            builder.cphase(qubit, qubit + 1, 0.3 + 0.01 * index)
    for qubit in range(n_qubits):
        builder.measure(qubit)
    return builder.build()


def drive_service(service: QuantumJobService, jobs: int, shots: int) -> float:
    """Submit ``jobs`` distinct circuits and drain every result; returns
    wall seconds (submission + completion — the client-visible latency)."""
    started = time.perf_counter()
    handles = [service.submit(distinct_circuit(i), shots=shots) for i in range(jobs)]
    for handle in handles:
        handle.counts()
    return time.perf_counter() - started


def bench_dispatch_modes(quick: bool) -> dict:
    jobs = 16 if quick else 48
    shots = 256
    workers = min(4, max(2, host_cores()))
    processes = workers

    set_config(seed=1234)
    with QuantumJobService(
        backend="qpp", workers=workers, enable_cache=False,
        backend_options={"threads": 1}, name="bench-inprocess",
    ) as service:
        in_process_seconds = drive_service(service, jobs, shots)

    set_config(seed=1234)
    with QuantumJobService(
        backend="qpp", workers=workers, processes=processes, enable_cache=False,
        backend_options={"threads": 1}, name="bench-sharded",
    ) as service:
        sharded_seconds = drive_service(service, jobs, shots)
        snapshot = service.metrics()

    return {
        "workload": "cache_miss_dispatch",
        "jobs": jobs,
        "shots": shots,
        "workers": workers,
        "processes": processes,
        "in_process_seconds": in_process_seconds,
        "sharded_seconds": sharded_seconds,
        "in_process_jobs_per_second": jobs / in_process_seconds,
        "sharded_jobs_per_second": jobs / sharded_seconds,
        "speedup": in_process_seconds / sharded_seconds,
        "sharded_executions": snapshot.sharded_executions,
        "target": SPEEDUP_TARGET,
        "target_enforced": threshold_enforced(),
    }


# ---------------------------------------------------------------------------
# Acceptance identity: sharded == in-process, bit for bit
# ---------------------------------------------------------------------------


def algorithm_suite():
    shor = period_finding_circuit(15, 2)
    vqe = deuteron_ansatz_circuit(0.59)
    return {
        "bell": (bell_circuit(2), 2),
        "ghz": (ghz_circuit(5), 5),
        "qft": (qft_circuit(6), 6),
        "shor": (shor, shor.n_qubits),
        "vqe": (vqe, max(vqe.n_qubits, 2)),
    }


def check_identity(shots: int = 512, seed: int = 1234, shards: int = 2) -> dict:
    """Fixed-seed counts equality: ShardedExecutor vs the in-process seam."""
    results = {}
    local = LocalBackend(engine=ParallelSimulationEngine(num_threads=shards))
    with ShardedExecutor(shards, name="bench-identity") as sharded:
        for name, (circuit, width) in algorithm_suite().items():
            reference = local.execute(circuit, shots, n_qubits=width, seed=seed)
            result = sharded.execute(circuit, shots, n_qubits=width, seed=seed)
            results[name] = dict(result.counts) == dict(reference.counts)
    local.close()
    return results


def run_suite(quick: bool = False) -> dict:
    identity = check_identity()
    dispatch = bench_dispatch_modes(quick)
    return {
        "benchmark": "sharded_throughput",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": host_cores(),
        "results": [dispatch],
        "counts_identity": identity,
        "counts_identity_all": all(identity.values()),
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_sharded_dispatch_throughput_and_identity():
    """Acceptance: fixed-seed sharded == in-process counts everywhere; on
    hosts with >= 4 cores, sharded dispatch >= 2x in-process dispatch.  The
    JSON trajectory file lands either way."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_sharded_throughput.json"))
    assert report["counts_identity_all"], report["counts_identity"]
    (dispatch,) = report["results"]
    print(
        f"\nsharded dispatch {dispatch['speedup']:.2f}x over in-process "
        f"({dispatch['processes']} shards, {report['cpu_count']} cores, "
        f"target {SPEEDUP_TARGET}x {'enforced' if dispatch['target_enforced'] else 'recorded only'})"
    )
    if dispatch["target_enforced"]:
        assert dispatch["speedup"] >= SPEEDUP_TARGET, dispatch


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer jobs")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_sharded_throughput.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    (dispatch,) = report["results"]
    enforced = "enforced" if dispatch["target_enforced"] else "recorded only"
    print(
        f"cache-miss dispatch: {dispatch['speedup']:.2f}x "
        f"(target {SPEEDUP_TARGET}x, {enforced}; "
        f"{dispatch['workers']} workers / {dispatch['processes']} shards on "
        f"{report['cpu_count']} core(s))"
    )
    print(f"counts identity (bell/ghz/qft/shor/vqe): {report['counts_identity']}")
    print(f"wrote {args.output}")
    ok = report["counts_identity_all"]
    if dispatch["target_enforced"]:
        ok = ok and dispatch["speedup"] >= SPEEDUP_TARGET
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
