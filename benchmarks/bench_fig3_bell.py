"""Figure 3 — two Bell kernels (1024 shots each): one-by-one vs parallel.

The paper reports speed-ups over 12-thread one-by-one execution of
1.00 / 0.96 / 1.30 / 1.63 for {one-by-one 12t, one-by-one 24t, parallel
2x6t, parallel 2x12t}.  The ``modeled`` benchmarks regenerate those ratios
deterministically on the paper's machine model; the ``real`` benchmarks time
actual execution of the same workload on this host (with small thread
counts, since the host is not a 12-core Ryzen).
"""

from __future__ import annotations

import pytest

from repro.benchmark.figures import PAPER_FIGURE3, figure3
from repro.benchmark.harness import BenchmarkHarness
from repro.benchmark.workloads import bell_workload, figure3_workload

#: The paper's four configurations: (variant, total threads, paper speed-up key).
_CONFIGURATIONS = [
    ("one-by-one", 12, "one-by-one 12 threads"),
    ("one-by-one", 24, "one-by-one 24 threads"),
    ("parallel", 12, "parallel 2 x (6 threads/task)"),
    ("parallel", 24, "parallel 2 x (12 threads/task)"),
]


@pytest.mark.parametrize("variant,threads,label", _CONFIGURATIONS)
def test_fig3_modeled_variant(benchmark, variant, threads, label):
    """Benchmark the modeled evaluation of one Figure 3 configuration."""
    harness = BenchmarkHarness(mode="modeled")
    workload = figure3_workload()
    result = benchmark(harness.run_variant, workload, variant, threads)
    benchmark.extra_info["paper_speedup_vs_12t_baseline"] = PAPER_FIGURE3[label]
    benchmark.extra_info["modeled_duration"] = result.duration


def test_fig3_full_series_modeled(benchmark):
    """Regenerate the whole Figure 3 series and record paper-vs-measured."""
    series = benchmark(figure3, "modeled")
    benchmark.extra_info["paper"] = series.paper()
    benchmark.extra_info["measured"] = {k: round(v, 3) for k, v in series.measured().items()}
    measured = series.measured()
    assert measured["parallel 2 x (12 threads/task)"] > 1.2
    assert measured["parallel 2 x (6 threads/task)"] > 1.1


@pytest.mark.parametrize("variant,total_threads", [("one-by-one", 2), ("parallel", 2)])
def test_fig3_real_execution(benchmark, variant, total_threads):
    """Wall-clock execution of the two-Bell workload on this host (small scale)."""
    harness = BenchmarkHarness(mode="real")
    workload = bell_workload(n_kernels=2, shots=256)
    result = benchmark(harness.run_variant, workload, variant, total_threads)
    benchmark.extra_info["wall_seconds"] = result.duration
