"""Execution-plan benchmark — compiled plans vs per-call gate dispatch.

Measures what the compile-once/execute-many pipeline buys on the three
traffic shapes that dominate the paper's workloads:

1. **Parametric ansatz replay** (the VQE/QAOA optimiser loop): one cached
   parametric plan re-bound per parameter set, against the pre-plan
   accelerator behaviour of bind + IR passes + gate-by-gate dispatch on
   every evaluation.  Target: >= 3x.
2. **Trajectory replay** (mid-circuit-reset workloads): one compiled plan
   replayed per shot, against the historical per-shot Python dispatch.
   Target: >= 2x.
3. **Accelerator repeats** (broker-shaped traffic): repeated
   ``QppAccelerator.execute`` of one hot circuit with the plan cache warm
   vs the ``use-plans=False`` legacy path.

It also verifies the acceptance identity: with a fixed seed, plan-executed
results produce *the same counts* as the gate-by-gate path across the
algorithm suite (bell / ghz / qft / shor / vqe).

Run standalone (writes the ``BENCH_execution_plan.json`` trajectory file)::

    PYTHONPATH=src python benchmarks/bench_execution_plan.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_execution_plan.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.config import set_config
from repro.ir.builder import CircuitBuilder
from repro.ir.gates import X
from repro.ir.parameter import Parameter
from repro.ir.transforms import default_pass_manager
from repro.runtime.buffer import AcceleratorBuffer
from repro.runtime.qpp_accelerator import QppAccelerator
from repro.simulator.execution_plan import compile_parametric_plan, compile_plan
from repro.simulator.parallel_engine import ParallelSimulationEngine
from repro.simulator.plan_cache import reset_plan_cache
from repro.simulator.statevector import StateVector

SPEEDUP_TARGET_PARAMETRIC = 3.0
SPEEDUP_TARGET_TRAJECTORY = 2.0


# ---------------------------------------------------------------------------
# Workload circuits
# ---------------------------------------------------------------------------


def hwe_ansatz(n_qubits: int = 8, layers: int = 3):
    """Hardware-efficient symbolic ansatz: RY layers + CX entanglers."""
    builder = CircuitBuilder(n_qubits, name="hwe_ansatz")
    names = []
    for layer in range(layers):
        for qubit in range(n_qubits):
            name = f"t{layer}_{qubit}"
            names.append(name)
            builder.ry(qubit, Parameter(name))
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
    return builder.build(), len(names)


def reset_circuit(n_qubits: int = 8, layers: int = 3):
    """A trajectory workload: entangling layers with mid-circuit resets."""
    builder = CircuitBuilder(n_qubits, name="reset_workload")
    for layer in range(layers):
        for qubit in range(n_qubits):
            builder.h(qubit) if layer % 2 == 0 else builder.ry(qubit, 0.3 + 0.1 * qubit)
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
        builder.reset(layer % n_qubits)
    for qubit in range(n_qubits):
        builder.measure(qubit)
    return builder.build()


# ---------------------------------------------------------------------------
# Baselines: the pre-plan execution paths, replicated exactly
# ---------------------------------------------------------------------------


def naive_parametric_evaluation(circuit, parameter_sets, n_qubits, optimize=True):
    """Bind + IR passes + gate-by-gate dispatch per evaluation (the old path)."""
    manager = default_pass_manager()
    for values in parameter_sets:
        bound = circuit.bind(values)
        if optimize:
            bound = manager.run(bound)
        state = StateVector(n_qubits)
        for instruction in bound:
            if instruction.is_measurement:
                continue
            state.apply(instruction)


def plan_parametric_evaluation(parametric_plan, parameter_sets):
    """Re-bind the cached plan's rotations and replay it per evaluation."""
    for values in parameter_sets:
        plan = parametric_plan.bind(values)
        plan.execute(plan.new_state())


def naive_trajectories(circuit, n_qubits, shots, seed):
    """The historical per-shot gate-by-gate trajectory loop."""
    rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
    measured = circuit.measured_qubits() or tuple(range(n_qubits))
    histogram: dict[str, int] = {}
    for _ in range(shots):
        state = StateVector(n_qubits)
        for instruction in circuit:
            if instruction.is_measurement:
                continue
            if instruction.name == "RESET":
                outcome = state.measure(instruction.qubits[0], rng)
                if outcome == 1:
                    state.apply(X([instruction.qubits[0]]))
                continue
            state.apply(instruction)
        for key, value in state.sample(1, measured, rng).items():
            histogram[key] = histogram.get(key, 0) + value
    return histogram


# ---------------------------------------------------------------------------
# Benchmark suite
# ---------------------------------------------------------------------------


def _best_of(rounds, fn, *args):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def bench_parametric(quick: bool) -> dict:
    n_qubits, layers = (6, 2) if quick else (8, 3)
    repeats = 10 if quick else 50
    rounds = 2 if quick else 3
    circuit, n_params = hwe_ansatz(n_qubits, layers)
    rng = np.random.default_rng(0)
    parameter_sets = [list(rng.uniform(-np.pi, np.pi, n_params)) for _ in range(repeats)]

    parametric_plan = compile_parametric_plan(circuit, n_qubits)
    plan_parametric_evaluation(parametric_plan, parameter_sets[:1])  # warm up

    naive_seconds = _best_of(
        rounds, naive_parametric_evaluation, circuit, parameter_sets, n_qubits
    )
    plan_seconds = _best_of(rounds, plan_parametric_evaluation, parametric_plan, parameter_sets)
    # Secondary baseline: dispatch without the per-call IR passes.
    dispatch_seconds = _best_of(
        rounds, naive_parametric_evaluation, circuit, parameter_sets, n_qubits, False
    )
    return {
        "workload": "parametric_ansatz",
        "n_qubits": n_qubits,
        "layers": layers,
        "parameter_sets": repeats,
        "naive_seconds": naive_seconds,
        "naive_no_passes_seconds": dispatch_seconds,
        "plan_seconds": plan_seconds,
        "speedup": naive_seconds / plan_seconds,
        "speedup_vs_no_passes": dispatch_seconds / plan_seconds,
        "target": SPEEDUP_TARGET_PARAMETRIC,
    }


def bench_trajectory(quick: bool) -> dict:
    n_qubits, layers = (6, 2) if quick else (8, 3)
    shots = 100 if quick else 300
    rounds = 2 if quick else 3
    circuit = reset_circuit(n_qubits, layers)
    engine = ParallelSimulationEngine(num_threads=1)
    plan = compile_plan(circuit, n_qubits, optimize=False)

    naive_seconds = _best_of(rounds, naive_trajectories, circuit, n_qubits, shots, 7)
    plan_seconds = _best_of(
        rounds,
        lambda: engine.run_trajectories(n_qubits, circuit, shots, seed=7, plan=plan),
    )
    naive_counts = naive_trajectories(circuit, n_qubits, shots, 7)
    plan_counts = engine.run_trajectories(n_qubits, circuit, shots, seed=7, plan=plan)
    engine.close()
    return {
        "workload": "trajectory_replay",
        "n_qubits": n_qubits,
        "shots": shots,
        "naive_seconds": naive_seconds,
        "plan_seconds": plan_seconds,
        "speedup": naive_seconds / plan_seconds,
        "counts_identical": naive_counts == plan_counts,
        "target": SPEEDUP_TARGET_TRAJECTORY,
    }


def bench_accelerator_repeats(quick: bool) -> dict:
    """Broker-shaped traffic: the same hot circuit executed repeatedly."""
    n_qubits = 8 if quick else 10
    repeats = 5 if quick else 20
    shots = 256
    circuit = qft_circuit(n_qubits)
    set_config(seed=1234)

    def run(options):
        accelerator = QppAccelerator(options)
        for _ in range(repeats):
            buffer = AcceleratorBuffer(n_qubits)
            accelerator.execute(buffer, circuit, shots=shots)

    reset_plan_cache()
    run({"use-plans": True})  # warm the plan cache
    plan_seconds = _best_of(2, run, {"use-plans": True})
    legacy_seconds = _best_of(2, run, {"use-plans": False})
    return {
        "workload": "accelerator_repeats",
        "n_qubits": n_qubits,
        "repeats": repeats,
        "shots": shots,
        "legacy_seconds": legacy_seconds,
        "plan_seconds": plan_seconds,
        "speedup": legacy_seconds / plan_seconds,
    }


def algorithm_suite() -> dict:
    """(name -> (circuit, width)) for the counts-identity acceptance check."""
    shor = period_finding_circuit(15, 2)
    vqe = deuteron_ansatz_circuit(0.297)
    return {
        "bell": (bell_circuit(2), 2),
        "ghz": (ghz_circuit(5), 5),
        "qft": (qft_circuit(6), 6),
        "shor": (shor, shor.n_qubits),
        "vqe": (vqe, max(vqe.n_qubits, 2)),
    }


def check_identity(shots: int = 512, seed: int = 1234) -> dict:
    """Fixed-seed counts equality: plan path vs gate-by-gate path."""
    results = {}
    for name, (circuit, width) in algorithm_suite().items():
        set_config(seed=seed)
        planned = AcceleratorBuffer(width)
        QppAccelerator({"use-plans": True, "threads": 2}).execute(planned, circuit, shots=shots)
        set_config(seed=seed)
        legacy = AcceleratorBuffer(width)
        QppAccelerator({"use-plans": False, "threads": 2}).execute(legacy, circuit, shots=shots)
        results[name] = planned.get_measurement_counts() == legacy.get_measurement_counts()
    return results


def run_suite(quick: bool = False) -> dict:
    identity = check_identity()
    results = [
        bench_parametric(quick),
        bench_trajectory(quick),
        bench_accelerator_repeats(quick),
    ]
    return {
        "benchmark": "execution_plan",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "counts_identity": identity,
        "counts_identity_all": all(identity.values()),
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_parametric_plan_speedup_and_trajectory_file(tmp_path):
    """Acceptance: >=3x on parametric replay, >=2x on trajectories, counts
    identical across the algorithm suite; the JSON trajectory file lands."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_execution_plan.json"))
    parametric, trajectory, repeats = report["results"]
    assert report["counts_identity_all"], report["counts_identity"]
    assert trajectory["counts_identical"]
    print(
        f"\nparametric {parametric['speedup']:.1f}x (target {SPEEDUP_TARGET_PARAMETRIC}x), "
        f"trajectory {trajectory['speedup']:.1f}x (target {SPEEDUP_TARGET_TRAJECTORY}x), "
        f"accelerator repeats {repeats['speedup']:.1f}x"
    )
    assert parametric["speedup"] >= SPEEDUP_TARGET_PARAMETRIC, parametric
    assert trajectory["speedup"] >= SPEEDUP_TARGET_TRAJECTORY, trajectory


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sizes / fewer repeats")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_execution_plan.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    for result in report["results"]:
        target = result.get("target")
        target_note = f" (target {target}x)" if target else ""
        print(f"{result['workload']}: {result['speedup']:.2f}x{target_note}")
    print(f"counts identity (bell/ghz/qft/shor/vqe): {report['counts_identity']}")
    print(f"wrote {args.output}")
    ok = report["counts_identity_all"]
    parametric, trajectory, _ = report["results"]
    ok = ok and parametric["speedup"] >= SPEEDUP_TARGET_PARAMETRIC
    ok = ok and trajectory["speedup"] >= SPEEDUP_TARGET_TRAJECTORY
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
