"""Shared-memory replay benchmark — the ≥20-qubit single-state lane.

Measures the process-grade twin of the chunked-replay thread lane: one
deep 20-qubit circuit replayed three ways —

* **serial** — one thread, the bitwise reference;
* **thread lane** — ``ExecutionPlan.execute(pool=engine)``, every kernel
  chunked across a :class:`ParallelSimulationEngine` worker pool (PR 4);
* **shm lane** — ``ExecutionPlan.execute(pool=SharedStatePool)``, the same
  chunk decomposition executed by persistent worker *processes* over
  shared-memory amplitude buffers with a barrier per step.

Acceptance: both lanes must be **bitwise identical** to serial, fixed-seed
counts must be identical across local (threads) / local (shm) / sharded on
bell/ghz/qft/shor/vqe, and no ``/dev/shm`` segment may survive the run —
all enforced everywhere.  The ≥2x shm-over-threads speedup target is
enforced only on hosts with ≥4 CPU cores: the lane exists to beat the GIL
and memory-bandwidth ceiling of one process, which a 1-core container
cannot demonstrate (the ratio is still recorded there).

Run standalone (writes the ``BENCH_shm_replay.json`` trajectory file)::

    PYTHONPATH=src python benchmarks/bench_shm_replay.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_shm_replay.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bell import bell_circuit
from repro.algorithms.ghz import ghz_circuit
from repro.algorithms.qft import qft_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.algorithms.vqe import deuteron_ansatz_circuit
from repro.exec import LocalBackend, ShardedExecutor, SharedStatePool
from repro.exec.shm import SEGMENT_PREFIX
from repro.ir.builder import CircuitBuilder
from repro.simulator.execution_plan import compile_plan
from repro.simulator.parallel_engine import ParallelSimulationEngine

SPEEDUP_TARGET = 2.0
#: The 2x shm-over-threads target only binds where processes can win.
MIN_CORES_FOR_TARGET = 4
#: The paper's strong-scaling regime: 2^20 amplitudes, one state.
REPLAY_QUBITS = 20


def host_cores() -> int:
    return os.cpu_count() or 1


def threshold_enforced() -> bool:
    return host_cores() >= MIN_CORES_FOR_TARGET


def live_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):
        return []
    return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX))


# ---------------------------------------------------------------------------
# Workload: one deep 20-qubit circuit, replayed serial / threads / shm
# ---------------------------------------------------------------------------


def deep_circuit(n_qubits: int, layers: int):
    """RY layers + CX ladder + CPHASE ladder: hits the single, permutation
    and diagonal kernels (the CPHASE runs also exercise batching)."""
    builder = CircuitBuilder(n_qubits, name=f"deep_{n_qubits}q")
    for layer in range(layers):
        for qubit in range(n_qubits):
            builder.ry(qubit, 0.1 + 0.2 * layer + 0.05 * qubit)
        for qubit in range(n_qubits - 1):
            builder.cx(qubit, qubit + 1)
        for qubit in range(n_qubits - 1):
            builder.cphase(qubit, qubit + 1, 0.3 + 0.02 * qubit)
    return builder.build()


def _best_of(rounds: int, fn) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_shm_replay(quick: bool) -> dict:
    layers = 2 if quick else 4
    rounds = 2 if quick else 4
    workers = min(4, max(2, host_cores()))
    circuit = deep_circuit(REPLAY_QUBITS, layers)
    plan = compile_plan(circuit, REPLAY_QUBITS)

    serial_state = plan.execute(plan.new_state())
    with ParallelSimulationEngine(num_threads=workers) as engine:
        with SharedStatePool(workers, name="bench-shm") as pool:
            threaded_state = plan.execute(plan.new_state(), pool=engine)
            shm_state = plan.execute(plan.new_state(), pool=pool)
            thread_bitwise = bool(np.array_equal(serial_state, threaded_state))
            shm_bitwise = bool(np.array_equal(serial_state, shm_state))
            serial_seconds = _best_of(rounds, lambda: plan.execute(plan.new_state()))
            thread_seconds = _best_of(
                rounds, lambda: plan.execute(plan.new_state(), pool=engine)
            )
            shm_seconds = _best_of(
                rounds, lambda: plan.execute(plan.new_state(), pool=pool)
            )
    return {
        "workload": "single_state_replay",
        "n_qubits": REPLAY_QUBITS,
        "layers": layers,
        "plan_steps": plan.n_steps,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "thread_seconds": thread_seconds,
        "shm_seconds": shm_seconds,
        "speedup_vs_serial": serial_seconds / shm_seconds,
        "speedup_vs_threads": thread_seconds / shm_seconds,
        "thread_amplitudes_bitwise_identical": thread_bitwise,
        "shm_amplitudes_bitwise_identical": shm_bitwise,
        "target": SPEEDUP_TARGET,
        "target_enforced": threshold_enforced(),
    }


# ---------------------------------------------------------------------------
# Acceptance identity: counts frozen across local / shm / sharded
# ---------------------------------------------------------------------------


def algorithm_suite():
    shor = period_finding_circuit(15, 2)
    vqe = deuteron_ansatz_circuit(0.59)
    return {
        "bell": (bell_circuit(2), 2),
        "ghz": (ghz_circuit(5), 5),
        "qft": (qft_circuit(6), 6),
        "shor": (shor, shor.n_qubits),
        "vqe": (vqe, max(vqe.n_qubits, 2)),
    }


def check_identity(shots: int = 512, seed: int = 1234) -> dict:
    """Fixed-seed histograms per algorithm: local thread lane vs local shm
    lane vs sharded execution, all with chunking forced (threshold 2) so
    the shm lane actually runs on every state.  Bitwise-identical replay
    plus identical sampling streams mean not a single count may differ."""
    local = LocalBackend(engine=ParallelSimulationEngine(num_threads=2))
    shm = LocalBackend(
        engine=ParallelSimulationEngine(num_threads=2),
        shm_pool=SharedStatePool(2, name="bench-shm-identity"),
    )
    results: dict[str, dict[str, bool]] = {}
    with ShardedExecutor(2, name="bench-shm-shard") as sharded:
        for name, (circuit, width) in algorithm_suite().items():
            reference = local.execute(
                circuit, shots, n_qubits=width, seed=seed, chunk_threshold=2
            )
            via_shm = shm.execute(
                circuit, shots, n_qubits=width, seed=seed, chunk_threshold=2
            )
            via_shards = sharded.execute(
                circuit, shots, n_qubits=width, seed=seed, chunk_threshold=2
            )
            results[name] = {
                "shm": dict(via_shm.counts) == dict(reference.counts),
                "sharded": dict(via_shards.counts) == dict(reference.counts),
            }
    shm.shm_pool.close()
    local.close()
    shm.close()
    return results


def run_suite(quick: bool = False) -> dict:
    identity = check_identity()
    identity_all = all(ok for algo in identity.values() for ok in algo.values())
    replay = bench_shm_replay(quick)
    leaked = live_segments()
    return {
        "benchmark": "shm_replay",
        "quick": quick,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": host_cores(),
        "results": [replay],
        "counts_identity": identity,
        "counts_identity_all": identity_all,
        "leaked_segments": leaked,
    }


def write_trajectory_file(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_shm_replay_speedup_and_identity():
    """Acceptance: bitwise amplitudes on both lanes, cross-path counts
    identity and zero leaked segments everywhere; ≥2x shm-over-threads on
    ≥4-core hosts.  The JSON trajectory file lands either way."""
    report = run_suite(quick=True)
    write_trajectory_file(report, Path("BENCH_shm_replay.json"))
    (replay,) = report["results"]
    assert replay["thread_amplitudes_bitwise_identical"]
    assert replay["shm_amplitudes_bitwise_identical"]
    assert report["counts_identity_all"], report["counts_identity"]
    assert report["leaked_segments"] == [], report["leaked_segments"]
    print(
        f"\nshm replay {replay['speedup_vs_threads']:.2f}x over the thread lane "
        f"({replay['speedup_vs_serial']:.2f}x over serial) at "
        f"{replay['n_qubits']} qubits ({replay['workers']} workers, "
        f"{report['cpu_count']} cores, target {SPEEDUP_TARGET}x "
        f"{'enforced' if replay['target_enforced'] else 'recorded only'})"
    )
    if replay["target_enforced"]:
        assert replay["speedup_vs_threads"] >= SPEEDUP_TARGET, replay


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer layers/rounds")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_shm_replay.json"),
        help="where to write the JSON trajectory file",
    )
    args = parser.parse_args()
    report = run_suite(quick=args.quick)
    write_trajectory_file(report, args.output)
    (replay,) = report["results"]
    enforced = "enforced" if replay["target_enforced"] else "recorded only"
    print(
        f"single-state replay at {replay['n_qubits']} qubits: "
        f"shm {replay['speedup_vs_threads']:.2f}x vs threads, "
        f"{replay['speedup_vs_serial']:.2f}x vs serial "
        f"(target {SPEEDUP_TARGET}x vs threads, {enforced}; "
        f"{replay['workers']} workers on {report['cpu_count']} core(s))"
    )
    print(
        f"bitwise identical: threads={replay['thread_amplitudes_bitwise_identical']} "
        f"shm={replay['shm_amplitudes_bitwise_identical']}"
    )
    print(f"counts identity (shm/sharded per algorithm): {report['counts_identity']}")
    print(f"leaked segments: {report['leaked_segments']}")
    print(f"wrote {args.output}")
    ok = (
        report["counts_identity_all"]
        and replay["thread_amplitudes_bitwise_identical"]
        and replay["shm_amplitudes_bitwise_identical"]
        and not report["leaked_segments"]
    )
    if replay["target_enforced"]:
        ok = ok and replay["speedup_vs_threads"] >= SPEEDUP_TARGET
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
