"""Ablation A2 — shot-level parallelism (Section II, not evaluated in the paper).

The paper's evaluation only exploits task-level parallelism; Section II also
identifies shot-level parallelism.  This ablation measures how distributing
a kernel's shots over worker tasks behaves on the real backend, and compares
it against the single-worker execution of the same shot budget.
"""

from __future__ import annotations

import pytest

from repro.algorithms.bell import bell_circuit
from repro.algorithms.shor import period_finding_circuit
from repro.core.shot_parallelism import execute_shots_parallel


@pytest.mark.parametrize("workers", [1, 2, 4], ids=lambda w: f"{w}-workers")
def test_bell_shot_parallelism(benchmark, workers):
    """1024 Bell shots split over a varying number of worker tasks."""
    circuit = bell_circuit(2)
    counts = benchmark.pedantic(
        execute_shots_parallel,
        args=(circuit, 2),
        kwargs={"shots": 1024, "workers": workers},
        rounds=5,
        iterations=1,
    )
    assert sum(counts.values()) == 1024


@pytest.mark.parametrize("workers", [1, 2], ids=lambda w: f"{w}-workers")
def test_shor_shot_parallelism(benchmark, workers):
    """10 Shor(N=15, a=2) shots split over worker tasks.

    Each worker re-simulates the full 12-qubit kernel, so unlike the Bell
    case the per-worker cost is dominated by state evolution rather than
    sampling — the regime where shot splitting only pays off when shots are
    expensive (e.g. trajectory/noisy simulation).
    """
    circuit = period_finding_circuit(15, 2)
    counts = benchmark.pedantic(
        execute_shots_parallel,
        args=(circuit, 12),
        kwargs={"shots": 10, "workers": workers},
        rounds=3,
        iterations=1,
    )
    assert sum(counts.values()) == 10
